"""Load balancers: choose an invoker for every activation.

Three interchangeable strategies, all selectable per
:class:`~repro.platform.cluster.ClusterConfig` (``balancer=``) and all
sharing the same contract — prefer an invoker that already holds a warm
container for the application (container affinity is what makes
keep-alive useful), otherwise pick one with free memory, otherwise fall
back to the least-loaded node; dead invokers (mid-crash-restart) are
never selected, and :meth:`LoadBalancer.place` returns ``None`` only
when the whole fleet is down:

* :class:`LoadBalancer` — the default **co-prime ring walk**, mirroring
  OpenWhisk's sharding container-pool balancer: every application has a
  stable home invoker (blake2b hash) and walks the ring with a co-prime
  step.
* :class:`ConsistentHashBalancer` — a classic consistent-hash ring with
  virtual nodes, so fleet changes (autoscaling, permanent departures)
  re-home only the applications adjacent to the changed node instead of
  reshuffling everyone.
* :class:`LeastLoadedBalancer` — ignores affinity hashing entirely and
  greedily picks the invoker with the lowest memory load (warm-container
  preference still applies first).

The fleet is **mutable**: the autoscaler adds and removes invokers
through :meth:`LoadBalancer.add_invoker` /
:meth:`LoadBalancer.remove_invoker`, which invalidate every cached
topology derivative (the ring-walk ``(home, step)`` cache, the
consistent-hash vnode ring).  Stale caches after a fleet change were a
real latent-bug class: a ``(home, step)`` pair cached for an 18-invoker
ring indexes out of bounds on a 12-invoker one.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

from repro.platform.invoker import Invoker

#: Strategy names accepted by :func:`make_balancer` and ``ClusterConfig``.
BALANCER_STRATEGIES = ("ring", "consistent-hash", "least-loaded")

#: Virtual nodes per invoker on the consistent-hash ring: enough to keep
#: the load split even on small fleets, cheap enough to rebuild on every
#: topology change.
VIRTUAL_NODES = 64


def _stable_hash(app_id: str) -> int:
    """Deterministic hash of an application id (stable across processes)."""
    digest = hashlib.blake2b(app_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _coprime_step(num_invokers: int, app_hash: int) -> int:
    """A step size co-prime with the ring size, derived from the app hash."""
    if num_invokers <= 1:
        return 1
    candidate = (app_hash % (num_invokers - 1)) + 1
    while math.gcd(candidate, num_invokers) != 1:
        candidate = candidate % num_invokers + 1
    return candidate


@dataclass(slots=True)
class PlacementDecision:
    """Outcome of one scheduling decision (one is created per activation)."""

    invoker: Invoker
    home_invoker_id: int
    hops: int
    had_warm_container: bool


class LoadBalancer:
    """Co-prime ring walk with home-node affinity and memory awareness.

    Also the base class of the other strategies: it owns the mutable
    invoker list, the liveness filtering, and the saturated-cluster
    fallback; subclasses override the candidate ordering.
    """

    strategy = "ring"

    def __init__(self, invokers: Sequence[Invoker], *, overload_threshold: float = 0.9) -> None:
        if not invokers:
            raise ValueError("load balancer needs at least one invoker")
        if not 0 < overload_threshold <= 1.0:
            raise ValueError("overload threshold must be in (0, 1]")
        self._invokers = list(invokers)
        self.overload_threshold = overload_threshold
        # (home index, ring step) per application: the hash and co-prime
        # derivation are pure functions of (app id, ring size), and place()
        # runs once per replayed invocation.  Cleared whenever the fleet
        # changes — the cached values are only valid for one ring size.
        self._ring_cache: dict[str, tuple[int, int]] = {}

    @property
    def invokers(self) -> list[Invoker]:
        return list(self._invokers)

    @property
    def fleet_size(self) -> int:
        """Invokers currently in service (alive or mid-restart)."""
        return len(self._invokers)

    # ------------------------------------------------------------------ #
    # Topology changes (autoscaling)
    # ------------------------------------------------------------------ #
    def add_invoker(self, invoker: Invoker) -> None:
        """Add an invoker to the fleet (autoscaler scale-out)."""
        self._invokers.append(invoker)
        self._topology_changed()

    def remove_invoker(self, invoker: Invoker) -> None:
        """Remove an invoker from the fleet (autoscaler scale-in)."""
        self._invokers.remove(invoker)
        if not self._invokers:
            raise ValueError("cannot remove the last invoker")
        self._topology_changed()

    def _topology_changed(self) -> None:
        self._ring_cache.clear()

    # ------------------------------------------------------------------ #
    def _ring(self, app_id: str) -> tuple[int, int]:
        cached = self._ring_cache.get(app_id)
        if cached is None:
            app_hash = _stable_hash(app_id)
            count = len(self._invokers)
            cached = (app_hash % count, _coprime_step(count, app_hash))
            self._ring_cache[app_id] = cached
        return cached

    def home_invoker(self, app_id: str) -> Invoker:
        return self._invokers[self._ring(app_id)[0]]

    def _candidate_order(self, app_id: str) -> tuple[list[Invoker], int]:
        """(candidates in preference order, home invoker id).

        Subclass hook: the base class never calls it (the ring walk is
        inlined in :meth:`place` to keep the hot path allocation-free).
        """
        count = len(self._invokers)
        home_index, step = self._ring(app_id)
        order = [
            self._invokers[(home_index + hops * step) % count] for hops in range(count)
        ]
        return order, self._invokers[home_index].invoker_id

    def place(self, app_id: str, memory_mb: float) -> PlacementDecision | None:
        """Pick the invoker that should run the next activation of an app.

        Returns ``None`` when no invoker is alive (whole fleet down); the
        controller defers the activation and retries.
        """
        count = len(self._invokers)
        home_index, step = self._ring(app_id)
        home_id = self._invokers[home_index].invoker_id

        # First pass: prefer any live invoker that already holds a warm
        # container for the application, starting from the home node.
        index = home_index
        for hops in range(count):
            invoker = self._invokers[index]
            if invoker.alive and invoker.container_for(app_id) is not None:
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_id,
                    hops=hops,
                    had_warm_container=True,
                )
            index = (index + step) % count

        # Second pass: first live invoker (starting at home) with room.
        index = home_index
        for hops in range(count):
            invoker = self._invokers[index]
            if (
                invoker.alive
                and invoker.free_memory_mb >= memory_mb
                and invoker.load_fraction < self.overload_threshold
            ):
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_id,
                    hops=hops,
                    had_warm_container=False,
                )
            index = (index + step) % count

        return self._saturated_fallback(home_id, count)

    def _saturated_fallback(
        self, home_id: int, hops: int
    ) -> PlacementDecision | None:
        """Least-loaded live invoker, or ``None`` with the fleet down."""
        least_loaded: Invoker | None = None
        for invoker in self._invokers:
            if invoker.alive and (
                least_loaded is None
                or invoker.load_fraction < least_loaded.load_fraction
            ):
                least_loaded = invoker
        if least_loaded is None:
            return None
        return PlacementDecision(
            invoker=least_loaded,
            home_invoker_id=home_id,
            hops=hops,
            had_warm_container=False,
        )

    def _place_in_order(
        self, app_id: str, memory_mb: float
    ) -> PlacementDecision | None:
        """Generic two-pass placement over :meth:`_candidate_order`."""
        order, home_id = self._candidate_order(app_id)
        for hops, invoker in enumerate(order):
            if invoker.alive and invoker.container_for(app_id) is not None:
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_id,
                    hops=hops,
                    had_warm_container=True,
                )
        for hops, invoker in enumerate(order):
            if (
                invoker.alive
                and invoker.free_memory_mb >= memory_mb
                and invoker.load_fraction < self.overload_threshold
            ):
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_id,
                    hops=hops,
                    had_warm_container=False,
                )
        return self._saturated_fallback(home_id, len(order))


class ConsistentHashBalancer(LoadBalancer):
    """Consistent-hash ring with virtual nodes.

    Each invoker contributes :data:`VIRTUAL_NODES` points on a hash
    ring; an application's candidates are the distinct invokers met
    walking clockwise from the application's hash.  Adding or removing
    an invoker only re-homes the applications whose ring successor
    changed, which is exactly the elasticity property the co-prime walk
    (which re-derives everything from the fleet *size*) lacks.
    """

    strategy = "consistent-hash"

    def __init__(self, invokers: Sequence[Invoker], *, overload_threshold: float = 0.9) -> None:
        self._ring_hashes: list[int] = []
        self._ring_invokers: list[Invoker] = []
        super().__init__(invokers, overload_threshold=overload_threshold)
        self._rebuild_ring()

    def _topology_changed(self) -> None:
        super()._topology_changed()
        self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        points: list[tuple[int, Invoker]] = []
        for invoker in self._invokers:
            for replica in range(VIRTUAL_NODES):
                points.append(
                    (_stable_hash(f"invoker-{invoker.invoker_id}#{replica}"), invoker)
                )
        points.sort(key=lambda pair: pair[0])
        self._ring_hashes = [point for point, _ in points]
        self._ring_invokers = [invoker for _, invoker in points]

    def _candidate_order(self, app_id: str) -> tuple[list[Invoker], int]:
        start = bisect.bisect_right(self._ring_hashes, _stable_hash(app_id))
        total = len(self._ring_invokers)
        order: list[Invoker] = []
        seen: set[int] = set()
        for offset in range(total):
            invoker = self._ring_invokers[(start + offset) % total]
            if invoker.invoker_id not in seen:
                seen.add(invoker.invoker_id)
                order.append(invoker)
        return order, order[0].invoker_id

    def place(self, app_id: str, memory_mb: float) -> PlacementDecision | None:
        return self._place_in_order(app_id, memory_mb)


class LeastLoadedBalancer(LoadBalancer):
    """Greedy least-memory-loaded placement (no affinity hashing).

    Candidates are ordered by ``(effective_load_fraction, invoker_id)``
    at decision time, so the warm-container pass picks the least-loaded
    holder and the free-memory pass spreads new containers across the
    fleet.  The *effective* load discounts degraded (slow) invokers —
    they sort behind equally-loaded healthy ones — and is bit-identical
    to the raw load when nothing is degraded.
    """

    strategy = "least-loaded"

    def _candidate_order(self, app_id: str) -> tuple[list[Invoker], int]:
        del app_id
        order = sorted(
            self._invokers,
            key=lambda inv: (inv.effective_load_fraction, inv.invoker_id),
        )
        return order, order[0].invoker_id

    def place(self, app_id: str, memory_mb: float) -> PlacementDecision | None:
        return self._place_in_order(app_id, memory_mb)


def make_balancer(
    strategy: str,
    invokers: Sequence[Invoker],
    *,
    overload_threshold: float = 0.9,
) -> LoadBalancer:
    """Build a load balancer by strategy name (see :data:`BALANCER_STRATEGIES`)."""
    if strategy == "ring":
        return LoadBalancer(invokers, overload_threshold=overload_threshold)
    if strategy == "consistent-hash":
        return ConsistentHashBalancer(invokers, overload_threshold=overload_threshold)
    if strategy == "least-loaded":
        return LeastLoadedBalancer(invokers, overload_threshold=overload_threshold)
    raise ValueError(
        f"unknown balancer strategy {strategy!r}; expected one of {BALANCER_STRATEGIES}"
    )
