"""Load balancer: chooses an invoker for every activation.

Mirrors OpenWhisk's sharding container-pool balancer in spirit: every
application has a *home invoker* (a stable hash of the application id);
if the home invoker already hosts a warm container for the application it
is always preferred (container affinity is what makes keep-alive useful),
otherwise the balancer walks the ring with a co-prime step until it finds
an invoker with enough free memory, falling back to the least-loaded
invoker when every node is saturated.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

from repro.platform.invoker import Invoker


def _stable_hash(app_id: str) -> int:
    """Deterministic hash of an application id (stable across processes)."""
    digest = hashlib.blake2b(app_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _coprime_step(num_invokers: int, app_hash: int) -> int:
    """A step size co-prime with the ring size, derived from the app hash."""
    if num_invokers <= 1:
        return 1
    candidate = (app_hash % (num_invokers - 1)) + 1
    while math.gcd(candidate, num_invokers) != 1:
        candidate = candidate % num_invokers + 1
    return candidate


@dataclass(slots=True)
class PlacementDecision:
    """Outcome of one scheduling decision (one is created per activation)."""

    invoker: Invoker
    home_invoker_id: int
    hops: int
    had_warm_container: bool


class LoadBalancer:
    """Chooses invokers with home-node affinity and memory awareness."""

    def __init__(self, invokers: Sequence[Invoker], *, overload_threshold: float = 0.9) -> None:
        if not invokers:
            raise ValueError("load balancer needs at least one invoker")
        if not 0 < overload_threshold <= 1.0:
            raise ValueError("overload threshold must be in (0, 1]")
        self._invokers = list(invokers)
        self.overload_threshold = overload_threshold
        # (home index, ring step) per application: the hash and co-prime
        # derivation are pure functions of (app id, ring size), and place()
        # runs once per replayed invocation.
        self._ring_cache: dict[str, tuple[int, int]] = {}

    @property
    def invokers(self) -> list[Invoker]:
        return list(self._invokers)

    def _ring(self, app_id: str) -> tuple[int, int]:
        cached = self._ring_cache.get(app_id)
        if cached is None:
            app_hash = _stable_hash(app_id)
            count = len(self._invokers)
            cached = (app_hash % count, _coprime_step(count, app_hash))
            self._ring_cache[app_id] = cached
        return cached

    def home_invoker(self, app_id: str) -> Invoker:
        return self._invokers[self._ring(app_id)[0]]

    def place(self, app_id: str, memory_mb: float) -> PlacementDecision:
        """Pick the invoker that should run the next activation of an app."""
        count = len(self._invokers)
        home_index, step = self._ring(app_id)

        # First pass: prefer any invoker that already holds a warm container
        # for the application, starting from the home node.
        index = home_index
        for hops in range(count):
            invoker = self._invokers[index]
            if invoker.container_for(app_id) is not None:
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_index,
                    hops=hops,
                    had_warm_container=True,
                )
            index = (index + step) % count

        # Second pass: first invoker (starting at home) with room to spare.
        index = home_index
        for hops in range(count):
            invoker = self._invokers[index]
            fits = invoker.free_memory_mb >= memory_mb
            not_overloaded = invoker.load_fraction < self.overload_threshold
            if fits and not_overloaded:
                return PlacementDecision(
                    invoker=invoker,
                    home_invoker_id=home_index,
                    hops=hops,
                    had_warm_container=False,
                )
            index = (index + step) % count

        # Saturated cluster: pick the least-loaded invoker and let it evict.
        least_loaded = min(self._invokers, key=lambda inv: inv.load_fraction)
        return PlacementDecision(
            invoker=least_loaded,
            home_invoker_id=home_index,
            hops=count,
            had_warm_container=False,
        )
