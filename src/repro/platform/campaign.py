"""Replicated platform replay campaigns over (policy × seed × cluster).

The paper's OpenWhisk experiment is a single hand-sized replay: one
cluster shape, one seed, two policies.  :class:`ReplayCampaign` turns the
platform layer into a scenario engine — it fans every combination of
policy factory, sampling seed, and :class:`ClusterScenario` (a named
:class:`~repro.platform.cluster.ClusterConfig`) out over the simulation
engine's shared fork pool
(:func:`~repro.core.pool.fork_pool_map`), reassembling results by
task index so the campaign outcome is byte-identical no matter how many
workers ran.

Scenario builders cover the axes the paper only gestures at:

* :func:`invoker_count_scenarios` — invoker-count scaling at fixed
  per-invoker memory;
* :func:`memory_pressure_scenarios` — shrinking per-invoker memory to
  trace eviction-rate curves;
* :func:`heterogeneous_memory_scenario` — mixed-size invoker fleets;
* :func:`fault_rate_scenarios` — invoker crash-rate sweeps (fault
  injection via :class:`~repro.platform.faults.FaultPlan`);
* :func:`domain_outage_scenarios` — correlated rack/zone outage sweeps
  (every invoker in a failure domain goes down together);
* :func:`degradation_scenarios` — partial-degradation sweeps (slow
  invokers with execution/message-delay multipliers and optional
  brownout shedding);
* :func:`controller_failover_scenario` — controller crash/recovery with
  at-least-once redelivery and completion dedup;
* :func:`balancer_scenarios` — load-balancer strategy comparison;
* :func:`autoscaling_scenario` — an elastic fleet driven by the
  :class:`~repro.platform.autoscaler.Autoscaler`;
* :func:`autoscaler_policy_scenarios` — threshold vs predictive
  autoscaling under identical load and faults.

Each replay's outcome travels back as a :class:`CampaignCell` holding
the scalar summary plus the per-app cold-start percentages (the Figure
20 CDF input) — small, picklable, and sufficient for multi-seed error
bars.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.platform.autoscaler import AUTOSCALER_POLICIES, AutoscalerConfig
from repro.platform.cluster import ClusterConfig
from repro.platform.faults import FaultPlan
from repro.platform.loadbalancer import BALANCER_STRATEGIES
from repro.platform.replay import ReplayConfig, ReplayFeed, TraceReplayer
from repro.policies.registry import PolicyFactory
from repro.core.pool import fork_pool_map
from repro.simulation.sweep_engine import check_unique_policy_names
from repro.trace.schema import Workload

#: Summary keys aggregated (mean ± population std across seeds) per row.
AGGREGATED_METRICS: tuple[str, ...] = (
    "cold_start_pct",
    "third_quartile_app_cold_start_pct",
    "average_latency_seconds",
    "p99_latency_seconds",
    "average_memory_mb",
    "evictions",
    "prewarm_loads",
    "invoker_crashes",
    "crash_cold_starts",
    "dropped_invocations",
    "domain_outages",
    "slowdowns",
    "brownout_rejections",
    "controller_failovers",
    "duplicate_completions",
    "redeliveries",
)


@dataclass(frozen=True)
class ClusterScenario:
    """A named cluster shape replayed by a campaign."""

    name: str
    config: ClusterConfig


def invoker_count_scenarios(
    counts: Sequence[int], base: ClusterConfig | None = None
) -> list[ClusterScenario]:
    """One scenario per invoker count (homogeneous memory from ``base``)."""
    base = base or ClusterConfig()
    return [
        ClusterScenario(name=f"invokers-{count}", config=base.scaled(count))
        for count in counts
    ]


def memory_pressure_scenarios(
    memories_mb: Sequence[float], base: ClusterConfig | None = None
) -> list[ClusterScenario]:
    """One scenario per per-invoker memory budget (eviction-rate curves)."""
    base = base or ClusterConfig()
    return [
        ClusterScenario(
            name=f"mem-{memory_mb:g}mb",
            config=replace(
                base, invoker_memory_mb=float(memory_mb), invoker_memories_mb=None
            ),
        )
        for memory_mb in memories_mb
    ]


def heterogeneous_memory_scenario(
    invoker_memories_mb: Sequence[float],
    *,
    name: str = "heterogeneous",
    base: ClusterConfig | None = None,
) -> ClusterScenario:
    """A mixed-size invoker fleet (one invoker per listed budget)."""
    base = base or ClusterConfig()
    memories = tuple(float(m) for m in invoker_memories_mb)
    return ClusterScenario(
        name=name,
        config=replace(
            base, num_invokers=len(memories), invoker_memories_mb=memories
        ),
    )


def fault_rate_scenarios(
    crash_rates_per_hour: Sequence[float],
    *,
    base: ClusterConfig | None = None,
    restart_delay_seconds: float = 30.0,
    retry_limit: int = 1,
    fault_seed: int = 0,
) -> list[ClusterScenario]:
    """One scenario per invoker crash rate (fault-realism curves).

    Rate 0 maps to a scenario without a fault plan — byte-identical to a
    plain replay, anchoring the curve at today's behaviour.
    """
    base = base or ClusterConfig()
    scenarios = []
    for rate in crash_rates_per_hour:
        plan = (
            FaultPlan(
                crash_rate_per_hour=float(rate),
                restart_delay_seconds=restart_delay_seconds,
                retry_limit=retry_limit,
                seed=fault_seed,
            )
            if rate > 0
            else None
        )
        scenarios.append(
            ClusterScenario(
                name=f"crash-{rate:g}ph", config=replace(base, fault_plan=plan)
            )
        )
    return scenarios


def domain_outage_scenarios(
    outage_rates_per_hour: Sequence[float],
    *,
    base: ClusterConfig | None = None,
    fault_domains: int = 3,
    outage_seconds: float = 120.0,
    fault_seed: int = 0,
) -> list[ClusterScenario]:
    """One scenario per correlated domain-outage rate (rack/zone failures).

    Every invoker in a failure domain (``invoker_id % fault_domains``)
    goes down and comes back together.  Rate 0 maps to a scenario
    without a fault plan — byte-identical to a plain replay.
    """
    base = base or ClusterConfig()
    scenarios = []
    for rate in outage_rates_per_hour:
        plan = (
            FaultPlan(
                domain_outage_rate_per_hour=float(rate),
                domain_outage_seconds=outage_seconds,
                seed=fault_seed,
            )
            if rate > 0
            else None
        )
        scenarios.append(
            ClusterScenario(
                name=f"domain-outage-{rate:g}ph",
                config=replace(base, fault_plan=plan, fault_domains=fault_domains),
            )
        )
    return scenarios


def degradation_scenarios(
    slow_rates_per_hour: Sequence[float],
    *,
    base: ClusterConfig | None = None,
    slow_execution_factor: float = 4.0,
    slow_duration_seconds: float = 300.0,
    brownout_concurrency: int = 0,
    fault_seed: int = 0,
) -> list[ClusterScenario]:
    """One scenario per partial-degradation rate (slow invokers).

    Degraded invokers multiply execution and startup times by
    ``slow_execution_factor`` and (with ``brownout_concurrency > 0``)
    shed activations above that in-flight cap.  Rate 0 maps to a
    scenario without a fault plan.
    """
    base = base or ClusterConfig()
    scenarios = []
    for rate in slow_rates_per_hour:
        plan = (
            FaultPlan(
                slow_rate_per_hour=float(rate),
                slow_duration_seconds=slow_duration_seconds,
                slow_execution_factor=slow_execution_factor,
                brownout_concurrency=brownout_concurrency,
                seed=fault_seed,
            )
            if rate > 0
            else None
        )
        scenarios.append(
            ClusterScenario(
                name=f"slow-{rate:g}ph", config=replace(base, fault_plan=plan)
            )
        )
    return scenarios


def controller_failover_scenario(
    mttf_hours: float,
    *,
    name: str | None = None,
    base: ClusterConfig | None = None,
    failover_seconds: float = 5.0,
    fault_seed: int = 0,
) -> ClusterScenario:
    """A controller crash/recovery scenario with at-least-once redelivery.

    The controller crashes on a seeded exponential schedule with the
    given mean time to failure and recovers ``failover_seconds`` later,
    re-driving every unacknowledged activation from its replay log;
    duplicate completions are swallowed by id.
    """
    base = base or ClusterConfig()
    plan = FaultPlan(
        controller_mttf_hours=float(mttf_hours),
        controller_failover_seconds=failover_seconds,
        seed=fault_seed,
    )
    return ClusterScenario(
        name=name or f"failover-{mttf_hours:g}h",
        config=replace(base, fault_plan=plan),
    )


def balancer_scenarios(
    strategies: Sequence[str] | None = None, base: ClusterConfig | None = None
) -> list[ClusterScenario]:
    """One scenario per load-balancer strategy (same fleet, same faults)."""
    base = base or ClusterConfig()
    return [
        ClusterScenario(
            name=f"balancer-{strategy}", config=replace(base, balancer=strategy)
        )
        for strategy in (strategies or BALANCER_STRATEGIES)
    ]


def autoscaling_scenario(
    autoscaler: AutoscalerConfig | None = None,
    *,
    name: str = "autoscaled",
    base: ClusterConfig | None = None,
) -> ClusterScenario:
    """An elastic-fleet scenario (fleet resized on the autoscaler's tick)."""
    base = base or ClusterConfig()
    return ClusterScenario(
        name=name,
        config=replace(base, autoscaler=autoscaler or AutoscalerConfig()),
    )


def autoscaler_policy_scenarios(
    policies: Sequence[str] | None = None,
    *,
    base: ClusterConfig | None = None,
    autoscaler: AutoscalerConfig | None = None,
) -> list[ClusterScenario]:
    """One elastic-fleet scenario per autoscaling policy.

    Same load, same faults, same bounds — only the scaling rule differs
    (``threshold`` reacts to current utilization, ``predictive`` scales
    from the keep-alive policies' arrival histograms).
    """
    base = base or ClusterConfig()
    template = autoscaler or AutoscalerConfig()
    return [
        ClusterScenario(
            name=f"autoscale-{policy}",
            config=replace(base, autoscaler=replace(template, policy=policy)),
        )
        for policy in (policies or AUTOSCALER_POLICIES)
    ]


@dataclass(frozen=True)
class CampaignCell:
    """Outcome of one (policy, scenario, seed) replay."""

    policy_name: str
    scenario_name: str
    seed: int
    summary: Mapping[str, float]
    app_cold_start_pct: np.ndarray


@dataclass
class CampaignResult:
    """All cells of a campaign plus per-(policy, scenario) aggregation."""

    cells: list[CampaignCell]
    seeds: tuple[int, ...] = field(default_factory=tuple)

    def cell(self, policy_name: str, scenario_name: str, seed: int) -> CampaignCell:
        for cell in self.cells:
            if (
                cell.policy_name == policy_name
                and cell.scenario_name == scenario_name
                and cell.seed == seed
            ):
                return cell
        raise KeyError((policy_name, scenario_name, seed))

    def group(self, policy_name: str, scenario_name: str) -> list[CampaignCell]:
        """The per-seed cells of one (policy, scenario) pair, seed order."""
        return [
            cell
            for cell in self.cells
            if cell.policy_name == policy_name and cell.scenario_name == scenario_name
        ]

    def rows(self) -> list[dict[str, float | str]]:
        """One aggregated row per (policy, scenario): mean ± std over seeds.

        The mean lands under the plain metric name and the population
        standard deviation (the multi-seed error bar) under
        ``<metric>_std``; ``invocations`` is seed-independent and kept
        exact.
        """
        rows: list[dict[str, float | str]] = []
        seen: set[tuple[str, str]] = set()
        for cell in self.cells:
            key = (cell.policy_name, cell.scenario_name)
            if key in seen:
                continue
            seen.add(key)
            group = self.group(*key)
            row: dict[str, float | str] = {
                "policy": cell.policy_name,
                "scenario": cell.scenario_name,
                "seeds": float(len(group)),
                "invocations": float(group[0].summary["total_invocations"]),
            }
            for metric in AGGREGATED_METRICS:
                values = np.asarray([g.summary[metric] for g in group], dtype=float)
                row[metric] = float(values.mean())
                row[f"{metric}_std"] = float(values.std())
            rows.append(row)
        return rows

    def mean_cold_start_cdf(
        self, policy_name: str, scenario_name: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seed-averaged per-app cold-start CDF of one (policy, scenario)."""
        grid = np.linspace(0.0, 100.0, 101)
        group = self.group(policy_name, scenario_name)
        fractions = np.zeros_like(grid)
        contributing = 0
        for cell in group:
            values = np.sort(np.asarray(cell.app_cold_start_pct, dtype=float))
            if values.size == 0:
                continue
            fractions += np.searchsorted(values, grid, side="right") / values.size
            contributing += 1
        if contributing:
            fractions /= contributing
        return grid, fractions

    def as_text_table(self, *, metrics: Sequence[str] | None = None) -> str:
        """Plain-text rendering of the aggregated rows (CLI output)."""
        metrics = tuple(metrics or AGGREGATED_METRICS[:5])
        header = ["policy", "scenario", "seeds", "invocations"]
        for metric in metrics:
            header.append(metric)
            header.append(f"{metric}_std")
        lines = [" | ".join(f"{column:>28}" for column in header)]
        lines.append("-" * len(lines[0]))
        for row in self.rows():
            cells = [str(row["policy"]), str(row["scenario"])]
            cells.append(f"{row['seeds']:.0f}")
            cells.append(f"{row['invocations']:.0f}")
            for metric in metrics:
                cells.append(f"{row[metric]:.4f}")
                cells.append(f"{row[f'{metric}_std']:.4f}")
            lines.append(" | ".join(f"{cell:>28}" for cell in cells))
        return "\n".join(lines)


class ReplayCampaign:
    """Fans (policy × scenario × seed) platform replays over a fork pool.

    Args:
        workload: Workload to replay (typically a mid-range-popularity
            sample, as in Section 5.3).
        policy_factories: Policies to replay; duplicate names are
            rejected (results are keyed by name).
        scenarios: Named cluster shapes; duplicate names are rejected.
            Defaults to the paper's 18-invoker cluster.
        seeds: Execution-duration sampling seeds; one full replay per
            seed.  Defaults to the replay config's seed.
        replay_config: Replay window and duration cap; its ``seed``
            field is overridden per campaign seed.
        workers: Fork-pool size (``None``: all cores).  Results are
            independent of the worker count.
    """

    def __init__(
        self,
        workload: Workload,
        policy_factories: Sequence[PolicyFactory],
        *,
        scenarios: Sequence[ClusterScenario] | None = None,
        seeds: Sequence[int] | None = None,
        replay_config: ReplayConfig | None = None,
        workers: int | None = None,
    ) -> None:
        self.workload = workload
        self.policy_factories = list(policy_factories)
        if not self.policy_factories:
            raise ValueError("campaign needs at least one policy factory")
        self.replay_config = replay_config or ReplayConfig()
        self.scenarios = list(
            scenarios
            if scenarios is not None
            else [ClusterScenario(name="default", config=ClusterConfig())]
        )
        if not self.scenarios:
            raise ValueError("campaign needs at least one cluster scenario")
        if seeds is None:
            seeds = (self.replay_config.seed,)
        self.seeds = tuple(int(s) for s in seeds)
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        self.workers = workers
        check_unique_policy_names(self.policy_factories)
        _reject_duplicate_scenario_names(
            [scenario.name for scenario in self.scenarios]
        )
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate campaign seeds {list(self.seeds)}")
        # Descriptor plumbing for disk-backed workloads: forked replay
        # workers re-open the store memory-mapped instead of reading the
        # parent's heap columns (same path as the simulation engine's
        # parallel shards).
        self._parent_pid = os.getpid()
        self._worker_workload: tuple[int, Workload] | None = None

    def _task_workload(self) -> Workload:
        """The workload handle the calling process should replay from.

        The parent process (and any workload without a backing archive)
        uses the campaign's own workload.  A forked worker whose workload
        store was saved to or opened from disk re-opens it memory-mapped
        once per process (:meth:`~repro.trace.schema.Workload.reopened`):
        the columns come from the shared OS page cache, and results are
        identical because the archive holds byte-identical columns.
        """
        pid = os.getpid()
        if pid == self._parent_pid or self.workload.store.source_path is None:
            return self.workload
        cached = self._worker_workload
        if cached is not None and cached[0] == pid:
            return cached[1]
        workload = self.workload.reopened(mmap=True)
        self._worker_workload = (pid, workload)
        return workload

    @property
    def num_replays(self) -> int:
        return len(self.policy_factories) * len(self.scenarios) * len(self.seeds)

    def run(
        self, *, progress: Callable[[int, int], None] | None = None
    ) -> CampaignResult:
        """Run every (policy, scenario, seed) replay; deterministic order."""
        tasks = [
            (factory, scenario, seed)
            for factory in self.policy_factories
            for scenario in self.scenarios
            for seed in self.seeds
        ]
        # The submission stream depends only on (workload, replay seed):
        # build one feed per seed up front and share it across every
        # (policy, scenario) cell — forked workers inherit the columns.
        feeds = {
            seed: ReplayFeed(self.workload, replace(self.replay_config, seed=seed))
            for seed in self.seeds
        }

        def run_task(task_id: int) -> CampaignCell:
            factory, scenario, seed = tasks[task_id]
            replayer = TraceReplayer(
                self._task_workload(),
                replay_config=replace(self.replay_config, seed=seed),
                cluster_config=scenario.config,
                feed=feeds[seed],
            )
            result = replayer.run(factory)
            return CampaignCell(
                policy_name=factory.name,
                scenario_name=scenario.name,
                seed=seed,
                summary=result.summary(),
                app_cold_start_pct=result.metrics.app_cold_start_percentages(),
            )

        done = 0

        def on_result(task_id: int, cell: object) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(done, len(tasks))

        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        cells = fork_pool_map(run_task, len(tasks), workers, on_result=on_result)
        return CampaignResult(cells=list(cells), seeds=self.seeds)


def _reject_duplicate_scenario_names(names: Sequence[str]) -> None:
    seen: set[str] = set()
    duplicates = []
    for name in names:
        if name in seen:
            duplicates.append(name)
        seen.add(name)
    if duplicates:
        raise ValueError(
            f"duplicate scenario name(s) {duplicates}: campaign results are "
            "keyed by scenario name, so duplicates would silently overwrite "
            "each other"
        )
