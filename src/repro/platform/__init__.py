"""OpenWhisk-like FaaS platform substrate (Sections 4.3 and 5.3)."""

from repro.platform.autoscaler import Autoscaler, AutoscalerConfig
from repro.platform.campaign import (
    CampaignCell,
    CampaignResult,
    ClusterScenario,
    ReplayCampaign,
    autoscaling_scenario,
    balancer_scenarios,
    fault_rate_scenarios,
    heterogeneous_memory_scenario,
    invoker_count_scenarios,
    memory_pressure_scenarios,
)
from repro.platform.cluster import ClusterConfig, FaasCluster
from repro.platform.container import Container, ContainerState
from repro.platform.controller import Controller, ControllerStats
from repro.platform.events import EventHandle, EventLoop, SubmissionSource
from repro.platform.faults import FaultInjector, FaultPlan
from repro.platform.invoker import ColdStartModel, Invoker
from repro.platform.loadbalancer import (
    BALANCER_STRATEGIES,
    ConsistentHashBalancer,
    LeastLoadedBalancer,
    LoadBalancer,
    PlacementDecision,
    make_balancer,
)
from repro.platform.messages import (
    ActivationMessage,
    CompletionMessage,
    ContainerUnloadNotice,
    PrewarmMessage,
)
from repro.platform.metrics import (
    PLATFORM_EVENT_KINDS,
    AppInvocationStats,
    PlatformMetrics,
)
from repro.platform.replay import (
    ReplayConfig,
    ReplayFeed,
    ReplayResult,
    TraceReplayer,
    compare_policies_on_platform,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "CampaignCell",
    "CampaignResult",
    "ClusterScenario",
    "ReplayCampaign",
    "autoscaling_scenario",
    "balancer_scenarios",
    "fault_rate_scenarios",
    "heterogeneous_memory_scenario",
    "invoker_count_scenarios",
    "memory_pressure_scenarios",
    "SubmissionSource",
    "ReplayFeed",
    "ClusterConfig",
    "FaasCluster",
    "Container",
    "ContainerState",
    "Controller",
    "ControllerStats",
    "EventHandle",
    "EventLoop",
    "FaultInjector",
    "FaultPlan",
    "ColdStartModel",
    "Invoker",
    "BALANCER_STRATEGIES",
    "ConsistentHashBalancer",
    "LeastLoadedBalancer",
    "LoadBalancer",
    "PlacementDecision",
    "make_balancer",
    "ActivationMessage",
    "CompletionMessage",
    "ContainerUnloadNotice",
    "PrewarmMessage",
    "PLATFORM_EVENT_KINDS",
    "AppInvocationStats",
    "PlatformMetrics",
    "ReplayConfig",
    "ReplayResult",
    "TraceReplayer",
    "compare_policies_on_platform",
]
