"""Messages exchanged between the platform components.

Mirrors the OpenWhisk message flow described in Section 4.3: the
controller forwards an *activation message* to the chosen invoker for
every invocation.  The paper's modification adds a per-application
keep-alive duration field to the ``ActivationMessage`` so the invoker can
apply the policy's decision when the container goes idle; the pre-warming
message is the second addition, published by the load balancer when a
pre-warm is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass

# ActivationMessage and CompletionMessage are created once per replayed
# invocation — the two hottest allocations of the whole platform.  They
# are ``slots=True`` and deliberately *not* frozen: a frozen dataclass
# routes every field through ``object.__setattr__`` during construction,
# which is measurable at hundreds of thousands of messages.  Treat them
# as immutable by convention.


@dataclass(slots=True)
class ActivationMessage:
    """Request to execute one function invocation on an invoker.

    Attributes:
        activation_id: Unique id of this invocation.
        app_id: Application the function belongs to (unit of keep-alive).
        function_id: Function to execute.
        arrival_time_seconds: Time the invocation entered the controller.
        execution_seconds: Execution duration to simulate.
        memory_mb: Application memory footprint for container sizing.
        keepalive_seconds: Keep-alive window the invoker must apply to the
            container once this execution finishes (the paper's new field).
        prewarm_seconds: Pre-warming window; the invoker unloads the
            container right after execution when this is positive, and the
            controller schedules a pre-warm message for later.
        retries: How many times this activation has been resubmitted after
            being lost to an invoker crash or shed by a degraded invoker
            (fault injection only; mutated by the controller).
        defer_attempts: Consecutive whole-fleet-down placement deferrals,
            driving the controller's exponential backoff (reset once the
            activation places; fault injection only).
    """

    activation_id: int
    app_id: str
    function_id: str
    arrival_time_seconds: float
    execution_seconds: float
    memory_mb: float
    keepalive_seconds: float
    prewarm_seconds: float = 0.0
    retries: int = 0
    defer_attempts: int = 0


@dataclass(frozen=True, slots=True)
class PrewarmMessage:
    """Request to load an application container ahead of an expected invocation."""

    app_id: str
    target_time_seconds: float
    keepalive_seconds: float
    memory_mb: float


@dataclass(slots=True)
class CompletionMessage:
    """Reported by an invoker to the controller when an activation finishes."""

    activation_id: int
    app_id: str
    function_id: str
    invoker_id: int
    cold_start: bool
    queued_seconds: float
    startup_seconds: float
    execution_seconds: float

    @property
    def end_to_end_seconds(self) -> float:
        """Latency from arrival at the controller to completion."""
        return self.queued_seconds + self.startup_seconds + self.execution_seconds


@dataclass(frozen=True, slots=True)
class ContainerUnloadNotice:
    """Sent by an invoker when it unloads an application container."""

    app_id: str
    invoker_id: int
    time_seconds: float
    reason: str = "keepalive-expired"
