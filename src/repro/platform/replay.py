"""Trace replay onto the FaaS platform (the FaaSProfiler stand-in).

The paper drives its OpenWhisk deployment with FaaSProfiler, replaying a
scaled-down trace (68 mid-popularity applications, 8 hours) and
collecting cold-start and latency results.  :class:`TraceReplayer` plays
a :class:`~repro.trace.schema.Workload` into a :class:`FaasCluster`:
every invocation becomes a ``controller.submit`` at its trace timestamp,
with an execution duration drawn from the function's execution profile.

The replay is fed **columnar**: :class:`ReplayFeed` builds flat
submission columns straight from the workload's
:class:`~repro.trace.store.InvocationStore` CSR layout — per-function
horizon cuts are ``searchsorted`` prefixes of the sorted timestamp
column, time conversion and duration sampling are vectorized per
function block, and one stable argsort orders the whole stream —
and a cursor over those columns is merged with the cluster's
:class:`~repro.platform.events.EventLoop` at run time (see
:class:`~repro.platform.events.SubmissionSource`).  The event heap
therefore never holds the trace itself, only the in-flight platform
events, which is what lets one process replay the full multi-day
150-app workload instead of the paper's hand-sized 8-hour slice.

The submission stream is ordered exactly as the reference
(pre-scheduling) path ordered it — globally by arrival time, ties broken
by function population order — so the refactor is equivalence-locked
against the seed implementation: identical cold starts, latencies, and
policy decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.cluster import ClusterConfig, FaasCluster
from repro.platform.metrics import PlatformMetrics
from repro.policies.registry import PolicyFactory
from repro.simulation.sweep_engine import check_unique_policy_names
from repro.trace.schema import Workload

SECONDS_PER_MINUTE = 60.0


@dataclass(frozen=True)
class ReplayConfig:
    """Parameters of a platform replay experiment.

    Attributes:
        duration_minutes: Portion of the workload to replay (the paper's
            OpenWhisk runs last 8 hours = 480 minutes).  Invocations at
            or beyond the horizon are not submitted.
        seed: Seed for execution-time sampling.
        max_execution_seconds: Safety cap on sampled execution durations so
            a single extreme log-normal draw cannot occupy a container for
            the whole experiment.
    """

    duration_minutes: float = 480.0
    seed: int = 7
    max_execution_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.duration_minutes <= 0:
            raise ValueError("replay duration must be positive")
        if self.max_execution_seconds <= 0:
            raise ValueError("execution cap must be positive")


@dataclass
class ReplayResult:
    """Outcome of replaying one policy on the platform."""

    policy_name: str
    metrics: PlatformMetrics
    controller_overhead_microseconds: float
    prewarm_messages: int
    submissions: int = 0
    completed_unique: int = 0
    dropped: int = 0
    duplicate_completions: int = 0

    @property
    def conservation_holds(self) -> bool:
        """The at-least-once invariant: every submission completes or drops.

        ``completed_unique + dropped == submissions`` must hold for any
        fault plan — duplicates from controller failover are counted
        separately and never inflate ``completed_unique``.
        """
        return self.completed_unique + self.dropped == self.submissions

    def summary(self) -> dict[str, float]:
        data = self.metrics.summary()
        data["controller_overhead_us"] = self.controller_overhead_microseconds
        data["prewarm_messages"] = float(self.prewarm_messages)
        data["submissions"] = float(self.submissions)
        data["completed_unique"] = float(self.completed_unique)
        return data


class ReplayFeed:
    """Columnar submission stream for one (workload, replay config) pair.

    Built once and reused across policies and cluster shapes: the
    columns depend only on the trace and the sampling seed, matching the
    reference path where every policy's replay re-created the same RNG.
    Duration sampling consumes the generator in function population
    order, function by function, drawing exactly for the invocations
    inside the horizon — the same draws, in the same order, as the
    reference per-function loop.
    """

    __slots__ = (
        "num_submissions",
        "_arrival_seconds",
        "_app_ids",
        "_function_ids",
        "_durations",
        "_memory_mb",
    )

    def __init__(self, workload: Workload, config: ReplayConfig) -> None:
        store = workload.store
        rng = np.random.default_rng(config.seed)
        horizon = config.duration_minutes
        function_offsets = store.function_offsets

        time_pieces: list[np.ndarray] = []
        code_pieces: list[np.ndarray] = []
        duration_pieces: list[np.ndarray] = []
        # Functions iterate in population order == store code order; the
        # per-function slices are time-sorted, so each piece is sorted.
        for code, spec in enumerate(workload.functions()):
            if function_offsets[code] == function_offsets[code + 1]:
                continue
            times = store.function_slice_until(code, horizon)
            if times.size == 0:
                continue
            durations = spec.execution.sample_seconds(rng, size=times.size)
            np.minimum(durations, config.max_execution_seconds, out=durations)
            time_pieces.append(times)
            code_pieces.append(np.full(times.size, code, dtype=np.int64))
            duration_pieces.append(durations)

        if time_pieces:
            times = np.concatenate(time_pieces)
            codes = np.concatenate(code_pieces)
            durations = np.concatenate(duration_pieces)
        else:
            times = np.empty(0, dtype=np.float64)
            codes = np.empty(0, dtype=np.int64)
            durations = np.empty(0, dtype=np.float64)

        # Global arrival order with the reference path's tie-breaking:
        # the stream is function-major going in, so a stable time sort
        # leaves simultaneous submissions in function population order —
        # exactly the order pre-scheduled closures carried as heap
        # sequence numbers.
        order = np.argsort(times, kind="stable")
        times = times[order]
        codes = codes[order]
        durations = durations[order]
        app_codes = store.function_app_idx[codes]

        memory_by_app = [app.memory.average_mb for app in workload.apps]
        self.num_submissions = int(times.size)
        # Python-native columns: the cursor compares and passes scalars a
        # quarter of a million times, and plain floats/strings beat numpy
        # scalar boxing on that path.
        self._arrival_seconds = (times * SECONDS_PER_MINUTE).tolist()
        self._durations = durations.tolist()
        self._app_ids = [store.app_ids[i] for i in app_codes.tolist()]
        self._function_ids = [store.function_ids[i] for i in codes.tolist()]
        self._memory_mb = [memory_by_app[i] for i in app_codes.tolist()]

    def cursor(self, cluster: FaasCluster) -> "_FeedCursor":
        """A fresh submission cursor feeding this stream into ``cluster``."""
        return _FeedCursor(self, cluster)


class _FeedCursor:
    """Cursor adapting a :class:`ReplayFeed` to the event loop's source API."""

    __slots__ = ("_index", "_n", "_times", "_apps", "_functions", "_durations", "_memory", "_submit")

    def __init__(self, feed: ReplayFeed, cluster: FaasCluster) -> None:
        self._index = 0
        self._n = feed.num_submissions
        self._times = feed._arrival_seconds
        self._apps = feed._app_ids
        self._functions = feed._function_ids
        self._durations = feed._durations
        self._memory = feed._memory_mb
        self._submit = cluster.controller.submit

    def next_time(self) -> float | None:
        index = self._index
        if index >= self._n:
            return None
        return self._times[index]

    def emit(self) -> None:
        index = self._index
        self._index = index + 1
        self._submit(
            self._apps[index],
            self._functions[index],
            execution_seconds=self._durations[index],
            memory_mb=self._memory[index],
        )

    def emit_next(self) -> float | None:
        """Fused ``emit`` + ``next_time`` (the loop's preferred call)."""
        index = self._index
        self._index = index + 1
        self._submit(
            self._apps[index],
            self._functions[index],
            execution_seconds=self._durations[index],
            memory_mb=self._memory[index],
        )
        index += 1
        if index >= self._n:
            return None
        return self._times[index]


class TraceReplayer:
    """Replays a workload against a cluster running one policy.

    The columnar :class:`ReplayFeed` is built lazily on the first run and
    shared across runs (policies only change the cluster, never the
    submission stream).  Callers replaying the same (workload, replay
    config) under many cluster shapes — the campaigns — pass a pre-built
    ``feed`` to skip rebuilding the stream per replayer.
    """

    def __init__(
        self,
        workload: Workload,
        *,
        replay_config: ReplayConfig | None = None,
        cluster_config: ClusterConfig | None = None,
        feed: ReplayFeed | None = None,
    ) -> None:
        self.workload = workload
        self.replay_config = replay_config or ReplayConfig()
        self.cluster_config = cluster_config or ClusterConfig()
        self._feed = feed

    @property
    def feed(self) -> ReplayFeed:
        """The columnar submission stream (built once, then cached)."""
        if self._feed is None:
            self._feed = ReplayFeed(self.workload, self.replay_config)
        return self._feed

    def run(self, policy_factory: PolicyFactory) -> ReplayResult:
        """Replay the workload under one policy and collect platform metrics."""
        config = self.replay_config
        cluster = FaasCluster(policy_factory, self.cluster_config)
        horizon_seconds = config.duration_minutes * SECONDS_PER_MINUTE

        # Stream submissions from the columnar feed, merged with the
        # event loop in time order; then let in-flight work finish.  The
        # horizon bounds the fault injector's crash schedule and the
        # autoscaler's ticks so the loop drains.
        metrics = cluster.run(
            source=self.feed.cursor(cluster), horizon_seconds=horizon_seconds
        )
        metrics.finish(max(horizon_seconds, cluster.loop.now))
        stats = cluster.controller.stats
        return ReplayResult(
            policy_name=policy_factory.name,
            metrics=metrics,
            controller_overhead_microseconds=(
                stats.average_policy_update_microseconds
            ),
            prewarm_messages=stats.prewarm_messages,
            submissions=stats.submissions,
            completed_unique=stats.completed_unique,
            dropped=stats.dropped,
            duplicate_completions=stats.duplicate_completions,
        )


def compare_policies_on_platform(
    workload: Workload,
    policy_factories: list[PolicyFactory],
    *,
    replay_config: ReplayConfig | None = None,
    cluster_config: ClusterConfig | None = None,
) -> dict[str, ReplayResult]:
    """Replay the same workload under several policies (Figure 20).

    Raises:
        ValueError: When two factories share a name — results are keyed
            by name, so duplicates would silently overwrite each other
            (the same guard ``run_policies``/``compare`` apply).
    """
    check_unique_policy_names(policy_factories)
    replayer = TraceReplayer(
        workload, replay_config=replay_config, cluster_config=cluster_config
    )
    return {factory.name: replayer.run(factory) for factory in policy_factories}
