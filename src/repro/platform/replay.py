"""Trace replay onto the FaaS platform (the FaaSProfiler stand-in).

The paper drives its OpenWhisk deployment with FaaSProfiler, replaying a
scaled-down trace (68 mid-popularity applications, 8 hours) and collecting
cold-start and latency results.  :class:`TraceReplayer` plays a
:class:`~repro.trace.schema.Workload` into a :class:`FaasCluster`: every
invocation becomes a ``controller.submit`` at its trace timestamp, with an
execution duration drawn from the function's execution profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.cluster import ClusterConfig, FaasCluster
from repro.platform.metrics import PlatformMetrics
from repro.policies.registry import PolicyFactory
from repro.trace.schema import Workload

SECONDS_PER_MINUTE = 60.0


@dataclass(frozen=True)
class ReplayConfig:
    """Parameters of a platform replay experiment.

    Attributes:
        duration_minutes: Portion of the workload to replay (the paper's
            OpenWhisk runs last 8 hours = 480 minutes).
        seed: Seed for execution-time sampling.
        max_execution_seconds: Safety cap on sampled execution durations so
            a single extreme log-normal draw cannot occupy a container for
            the whole experiment.
    """

    duration_minutes: float = 480.0
    seed: int = 7
    max_execution_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.duration_minutes <= 0:
            raise ValueError("replay duration must be positive")
        if self.max_execution_seconds <= 0:
            raise ValueError("execution cap must be positive")


@dataclass
class ReplayResult:
    """Outcome of replaying one policy on the platform."""

    policy_name: str
    metrics: PlatformMetrics
    controller_overhead_microseconds: float
    prewarm_messages: int

    def summary(self) -> dict[str, float]:
        data = self.metrics.summary()
        data["controller_overhead_us"] = self.controller_overhead_microseconds
        data["prewarm_messages"] = float(self.prewarm_messages)
        return data


class TraceReplayer:
    """Replays a workload against a cluster running one policy."""

    def __init__(
        self,
        workload: Workload,
        *,
        replay_config: ReplayConfig | None = None,
        cluster_config: ClusterConfig | None = None,
    ) -> None:
        self.workload = workload
        self.replay_config = replay_config or ReplayConfig()
        self.cluster_config = cluster_config or ClusterConfig()

    def run(self, policy_factory: PolicyFactory) -> ReplayResult:
        """Replay the workload under one policy and collect platform metrics."""
        config = self.replay_config
        cluster = FaasCluster(policy_factory, self.cluster_config)
        rng = np.random.default_rng(config.seed)
        horizon_seconds = config.duration_minutes * SECONDS_PER_MINUTE

        submissions = 0
        # Iterate the columnar store directly: per-function timestamps are
        # read-only slices/gathers of the flat column, never dict lookups.
        store = self.workload.store
        function_offsets = store.function_offsets
        for app in self.workload.apps:
            memory_mb = app.memory.average_mb
            for function in app.functions:
                code = store.function_index(function.function_id)
                if function_offsets[code] == function_offsets[code + 1]:
                    continue
                times = store.function_slice(code)
                times = times[times < config.duration_minutes]
                if times.size == 0:
                    continue
                durations = function.execution.sample_seconds(rng, size=times.size)
                durations = np.minimum(durations, config.max_execution_seconds)
                for timestamp, duration in zip(times, durations):
                    self._schedule_submission(
                        cluster,
                        arrival_seconds=float(timestamp) * SECONDS_PER_MINUTE,
                        app_id=app.app_id,
                        function_id=function.function_id,
                        execution_seconds=float(duration),
                        memory_mb=memory_mb,
                    )
                    submissions += 1

        # Let in-flight work finish: run past the horizon until quiescent.
        metrics = cluster.run()
        metrics.finish(max(horizon_seconds, cluster.loop.now))
        return ReplayResult(
            policy_name=policy_factory.name,
            metrics=metrics,
            controller_overhead_microseconds=(
                cluster.controller.stats.average_policy_update_microseconds
            ),
            prewarm_messages=cluster.controller.stats.prewarm_messages,
        )

    @staticmethod
    def _schedule_submission(
        cluster: FaasCluster,
        *,
        arrival_seconds: float,
        app_id: str,
        function_id: str,
        execution_seconds: float,
        memory_mb: float,
    ) -> None:
        cluster.loop.schedule_at(
            arrival_seconds,
            lambda: cluster.controller.submit(
                app_id,
                function_id,
                execution_seconds=execution_seconds,
                memory_mb=memory_mb,
            ),
        )


def compare_policies_on_platform(
    workload: Workload,
    policy_factories: list[PolicyFactory],
    *,
    replay_config: ReplayConfig | None = None,
    cluster_config: ClusterConfig | None = None,
) -> dict[str, ReplayResult]:
    """Replay the same workload under several policies (Figure 20)."""
    replayer = TraceReplayer(
        workload, replay_config=replay_config, cluster_config=cluster_config
    )
    return {factory.name: replayer.run(factory) for factory in policy_factories}
