"""Invoker autoscaling: grow and shrink the fleet on a fixed tick.

The paper's deployment (and PR 5's campaigns) run a fixed 18-invoker
fleet; real platforms resize the invoker pool against load.  The
:class:`Autoscaler` samples the cluster on a fixed tick under one of two
policies:

* ``threshold`` — the classic reactive rule: **scale out** (provision
  one fresh invoker) when the fleet's mean *effective* memory
  utilization crosses ``scale_up_utilization`` or submissions are piling
  up deferred (the whole-fleet-down queue); **scale in** (decommission
  one fully idle invoker) when mean utilization drops below
  ``scale_down_utilization``.
* ``predictive`` — scales against the *forecast* arrival rate instead of
  the current load: the keep-alive policies already maintain per-app
  idle-time histograms (the paper's hybrid policy), whose mean
  inter-arrival time predicts each app's near-future rate.  The tick
  compares the predicted aggregate rate to the observed rate since the
  last tick, projects the utilization forward, and steps the fleet one
  invoker toward the projected need — ahead of the load actually
  arriving.

Both policies keep the fleet inside ``[min_invokers, max_invokers]`` and
honour a cooldown between scaling actions.  Every decision goes
through the shared :class:`~repro.platform.events.EventLoop` as an
ordinary flat event record, fleet-size samples land in
:class:`~repro.platform.metrics.PlatformMetrics` (the fleet-size
timeline), and topology changes are pushed through the load balancer's
``add_invoker``/``remove_invoker`` so its caches are invalidated.

Utilization is the mean of the fleet's *effective* load
(:attr:`~repro.platform.invoker.Invoker.effective_load_fraction`): a
degraded (slow) invoker counts as proportionally more loaded, so the
autoscaler compensates for partial degradation — exactly like a real
capacity controller watching work-in-progress rather than raw memory.

Determinism: new invokers draw their cold-start-latency RNG from
``default_rng([cluster seed, invoker id])`` — a pure function of the
configuration and the (deterministic) scaling trajectory — so
autoscaled replays stay byte-reproducible across campaign workers; the
predictive policy reads only simulation state (histograms, counters),
never a clock or an unseeded stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster wires us)
    from repro.platform.cluster import FaasCluster
    from repro.platform.invoker import Invoker

#: Autoscaling policies accepted by :class:`AutoscalerConfig`.
AUTOSCALER_POLICIES = ("threshold", "predictive")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Sizing rules for the invoker autoscaler.

    Attributes:
        min_invokers: Lower fleet bound (never scale in below this).
        max_invokers: Upper fleet bound (never scale out above this).
        tick_seconds: Sampling period of the control loop.
        scale_up_utilization: Mean effective-load fraction above which
            the fleet grows by one invoker.
        scale_down_utilization: Mean effective-load fraction below which
            an idle invoker is decommissioned.
        scale_up_queue_depth: Deferred submissions (whole fleet down or
            saturated) that force a scale-out regardless of utilization.
        cooldown_seconds: Minimum time between two scaling actions.
        invoker_memory_mb: Memory budget of autoscaled invokers; ``None``
            inherits the cluster's homogeneous budget.
        policy: ``"threshold"`` (reactive, the default) or
            ``"predictive"`` (scale from the per-app arrival histograms
            the keep-alive policies maintain).
    """

    min_invokers: int = 1
    max_invokers: int = 64
    tick_seconds: float = 60.0
    scale_up_utilization: float = 0.75
    scale_down_utilization: float = 0.25
    scale_up_queue_depth: int = 4
    cooldown_seconds: float = 120.0
    invoker_memory_mb: float | None = None
    policy: str = "threshold"

    def __post_init__(self) -> None:
        if self.min_invokers < 1:
            raise ValueError("autoscaler needs at least one invoker")
        if self.max_invokers < self.min_invokers:
            raise ValueError("max_invokers must be >= min_invokers")
        if self.tick_seconds <= 0:
            raise ValueError("tick period must be positive")
        if not 0 < self.scale_up_utilization <= 1.0:
            raise ValueError("scale-up utilization must be in (0, 1]")
        if not 0 <= self.scale_down_utilization < self.scale_up_utilization:
            raise ValueError(
                "scale-down utilization must be in [0, scale_up_utilization)"
            )
        if self.scale_up_queue_depth < 1:
            raise ValueError("scale-up queue depth must be at least 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be non-negative")
        if self.invoker_memory_mb is not None and self.invoker_memory_mb <= 0:
            raise ValueError("invoker memory must be positive")
        if self.policy not in AUTOSCALER_POLICIES:
            raise ValueError(
                f"unknown autoscaler policy {self.policy!r}; "
                f"expected one of {AUTOSCALER_POLICIES}"
            )


class Autoscaler:
    """Fixed-tick invoker-fleet controller for one cluster run."""

    def __init__(self, cluster: "FaasCluster", config: AutoscalerConfig) -> None:
        self.cluster = cluster
        self.config = config
        self._last_action_seconds = -float("inf")
        self._deferrals_seen = 0
        self._submissions_seen = 0
        self._last_sample_seconds = 0.0
        self._next_invoker_id = max(
            invoker.invoker_id for invoker in cluster.invokers
        ) + 1
        self._started = False

    # ------------------------------------------------------------------ #
    @property
    def fleet(self) -> list["Invoker"]:
        """In-service invokers (alive or mid-restart, not decommissioned)."""
        return [inv for inv in self.cluster.load_balancer.invokers if inv.in_service]

    def start(self, horizon_seconds: float) -> None:
        """Record the initial fleet size and begin ticking up to the horizon."""
        if self._started:
            raise RuntimeError("autoscaler already started")
        self._started = True
        loop = self.cluster.loop
        self.cluster.metrics.record_fleet_size(loop.now, len(self.fleet))
        tick = self.config.tick_seconds
        if loop.now + tick <= horizon_seconds:
            loop.schedule(tick, lambda: self._tick(horizon_seconds))

    # ------------------------------------------------------------------ #
    def _tick(self, horizon_seconds: float) -> None:
        loop = self.cluster.loop
        self._evaluate()
        self.cluster.metrics.record_fleet_size(loop.now, len(self.fleet))
        if loop.now + self.config.tick_seconds <= horizon_seconds:
            loop.schedule(
                self.config.tick_seconds, lambda: self._tick(horizon_seconds)
            )

    def _evaluate(self) -> None:
        config = self.config
        loop = self.cluster.loop
        if loop.now - self._last_action_seconds < config.cooldown_seconds:
            return
        fleet = self.fleet
        alive = [inv for inv in fleet if inv.alive]
        if alive:
            # Effective load: degraded invokers count as proportionally
            # more loaded (bit-identical to the raw load when healthy).
            utilization = sum(
                inv.effective_load_fraction for inv in alive
            ) / len(alive)
        else:
            # Whole fleet down: treat as fully loaded so we scale out.
            utilization = 1.0
        # Deferred/submitted counts since the last evaluation (rates, not
        # levels: the controller counters only ever grow).
        stats = self.cluster.controller.stats
        queued = stats.deferrals - self._deferrals_seen
        self._deferrals_seen = stats.deferrals
        observed = stats.submissions - self._submissions_seen
        self._submissions_seen = stats.submissions
        elapsed = loop.now - self._last_sample_seconds
        self._last_sample_seconds = loop.now

        if config.policy == "predictive":
            observed_rate = observed / elapsed if elapsed > 0 else 0.0
            self._evaluate_predictive(utilization, queued, observed_rate)
            return
        if (
            utilization > config.scale_up_utilization
            or queued >= config.scale_up_queue_depth
        ) and len(fleet) < config.max_invokers:
            self._scale_up()
        elif (
            utilization < config.scale_down_utilization
            and len(fleet) > config.min_invokers
        ):
            self._scale_down()

    def _evaluate_predictive(
        self, utilization: float, queued: int, observed_rate: float
    ) -> None:
        """Step the fleet toward the histogram-forecast arrival rate.

        The controller aggregates each app policy's expected
        inter-arrival time (the hybrid policy's idle-time histogram
        mean) into a predicted fleet-wide arrival rate; apps whose
        policy cannot estimate yet contribute their share of the
        *observed* rate instead.  Utilization is projected forward by
        ``predicted / observed`` and the fleet steps one invoker toward
        the size that would bring the projection back to the midpoint of
        the scaling band.
        """
        config = self.config
        fleet_size = len(self.fleet)
        predicted_rate, estimated_apps, total_apps = (
            self.cluster.controller.arrival_rate_estimate()
        )
        if total_apps > 0 and estimated_apps < total_apps:
            # Apps without a histogram estimate keep arriving at their
            # observed share of the rate.
            predicted_rate += observed_rate * (
                (total_apps - estimated_apps) / total_apps
            )
        if observed_rate > 0:
            projected = utilization * (predicted_rate / observed_rate)
        elif predicted_rate > 0:
            # Nothing arrived this tick but the histograms expect load:
            # hold the current utilization estimate rather than scaling
            # in on a lull the forecast says is temporary.
            projected = max(utilization, config.scale_down_utilization)
        else:
            projected = utilization
        target = (config.scale_up_utilization + config.scale_down_utilization) / 2.0
        desired = fleet_size
        if projected > 0 and target > 0:
            desired = math.ceil(fleet_size * projected / target)
        desired = max(config.min_invokers, min(config.max_invokers, desired))
        if queued >= config.scale_up_queue_depth:
            desired = max(desired, min(config.max_invokers, fleet_size + 1))
        if desired > fleet_size:
            self._scale_up()
        elif desired < fleet_size and projected < config.scale_up_utilization:
            self._scale_down()

    # ------------------------------------------------------------------ #
    def _scale_up(self) -> None:
        cluster = self.cluster
        invoker_id = self._next_invoker_id
        self._next_invoker_id += 1
        memory_mb = (
            self.config.invoker_memory_mb
            if self.config.invoker_memory_mb is not None
            else cluster.config.invoker_memory_mb
        )
        invoker = cluster.provision_invoker(invoker_id, memory_mb)
        self._last_action_seconds = cluster.loop.now
        cluster.metrics.record_platform_event(
            "scale-up", cluster.loop.now, invoker.invoker_id
        )

    def _scale_down(self) -> None:
        cluster = self.cluster
        # Only a fully idle invoker can leave; prefer the one with the
        # least resident memory (cheapest containers to re-create), ties
        # broken toward the newest invoker (LIFO, the natural elasticity
        # order).
        candidates = [
            inv
            for inv in self.fleet
            if inv.alive and inv.total_in_flight == 0
        ]
        if not candidates:
            return
        victim = min(
            candidates, key=lambda inv: (inv.used_memory_mb, -inv.invoker_id)
        )
        cluster.decommission_invoker(victim)
        self._last_action_seconds = cluster.loop.now
        cluster.metrics.record_platform_event(
            "scale-down", cluster.loop.now, victim.invoker_id
        )
