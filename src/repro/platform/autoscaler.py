"""Invoker autoscaling: grow and shrink the fleet on a fixed tick.

The paper's deployment (and PR 5's campaigns) run a fixed 18-invoker
fleet; real platforms resize the invoker pool against load.  The
:class:`Autoscaler` samples the cluster on a fixed tick and

* **scales out** — provisions one fresh invoker — when the fleet's mean
  memory utilization crosses ``scale_up_utilization`` or submissions are
  piling up deferred (the whole-fleet-down queue), and
* **scales in** — decommissions one fully idle invoker — when mean
  utilization drops below ``scale_down_utilization``,

always keeping the fleet inside ``[min_invokers, max_invokers]`` and
honouring a cooldown between scaling actions.  Every decision goes
through the shared :class:`~repro.platform.events.EventLoop` as an
ordinary flat event record, fleet-size samples land in
:class:`~repro.platform.metrics.PlatformMetrics` (the fleet-size
timeline), and topology changes are pushed through the load balancer's
``add_invoker``/``remove_invoker`` so its caches are invalidated.

Determinism: new invokers draw their cold-start-latency RNG from
``default_rng([cluster seed, invoker id])`` — a pure function of the
configuration and the (deterministic) scaling trajectory — so
autoscaled replays stay byte-reproducible across campaign workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster wires us)
    from repro.platform.cluster import FaasCluster
    from repro.platform.invoker import Invoker


@dataclass(frozen=True)
class AutoscalerConfig:
    """Sizing rules for the invoker autoscaler.

    Attributes:
        min_invokers: Lower fleet bound (never scale in below this).
        max_invokers: Upper fleet bound (never scale out above this).
        tick_seconds: Sampling period of the control loop.
        scale_up_utilization: Mean memory-load fraction above which the
            fleet grows by one invoker.
        scale_down_utilization: Mean memory-load fraction below which an
            idle invoker is decommissioned.
        scale_up_queue_depth: Deferred submissions (whole fleet down or
            saturated) that force a scale-out regardless of utilization.
        cooldown_seconds: Minimum time between two scaling actions.
        invoker_memory_mb: Memory budget of autoscaled invokers; ``None``
            inherits the cluster's homogeneous budget.
    """

    min_invokers: int = 1
    max_invokers: int = 64
    tick_seconds: float = 60.0
    scale_up_utilization: float = 0.75
    scale_down_utilization: float = 0.25
    scale_up_queue_depth: int = 4
    cooldown_seconds: float = 120.0
    invoker_memory_mb: float | None = None

    def __post_init__(self) -> None:
        if self.min_invokers < 1:
            raise ValueError("autoscaler needs at least one invoker")
        if self.max_invokers < self.min_invokers:
            raise ValueError("max_invokers must be >= min_invokers")
        if self.tick_seconds <= 0:
            raise ValueError("tick period must be positive")
        if not 0 < self.scale_up_utilization <= 1.0:
            raise ValueError("scale-up utilization must be in (0, 1]")
        if not 0 <= self.scale_down_utilization < self.scale_up_utilization:
            raise ValueError(
                "scale-down utilization must be in [0, scale_up_utilization)"
            )
        if self.scale_up_queue_depth < 1:
            raise ValueError("scale-up queue depth must be at least 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown must be non-negative")
        if self.invoker_memory_mb is not None and self.invoker_memory_mb <= 0:
            raise ValueError("invoker memory must be positive")


class Autoscaler:
    """Fixed-tick invoker-fleet controller for one cluster run."""

    def __init__(self, cluster: "FaasCluster", config: AutoscalerConfig) -> None:
        self.cluster = cluster
        self.config = config
        self._last_action_seconds = -float("inf")
        self._deferrals_seen = 0
        self._next_invoker_id = max(
            invoker.invoker_id for invoker in cluster.invokers
        ) + 1
        self._started = False

    # ------------------------------------------------------------------ #
    @property
    def fleet(self) -> list["Invoker"]:
        """In-service invokers (alive or mid-restart, not decommissioned)."""
        return [inv for inv in self.cluster.load_balancer.invokers if inv.in_service]

    def start(self, horizon_seconds: float) -> None:
        """Record the initial fleet size and begin ticking up to the horizon."""
        if self._started:
            raise RuntimeError("autoscaler already started")
        self._started = True
        loop = self.cluster.loop
        self.cluster.metrics.record_fleet_size(loop.now, len(self.fleet))
        tick = self.config.tick_seconds
        if loop.now + tick <= horizon_seconds:
            loop.schedule(tick, lambda: self._tick(horizon_seconds))

    # ------------------------------------------------------------------ #
    def _tick(self, horizon_seconds: float) -> None:
        loop = self.cluster.loop
        self._evaluate()
        self.cluster.metrics.record_fleet_size(loop.now, len(self.fleet))
        if loop.now + self.config.tick_seconds <= horizon_seconds:
            loop.schedule(
                self.config.tick_seconds, lambda: self._tick(horizon_seconds)
            )

    def _evaluate(self) -> None:
        config = self.config
        loop = self.cluster.loop
        if loop.now - self._last_action_seconds < config.cooldown_seconds:
            return
        fleet = self.fleet
        alive = [inv for inv in fleet if inv.alive]
        if alive:
            utilization = sum(inv.load_fraction for inv in alive) / len(alive)
        else:
            # Whole fleet down: treat as fully loaded so we scale out.
            utilization = 1.0
        # Deferred submissions since the last tick (a rate, not a level:
        # the controller counter only ever grows).
        deferrals = self.cluster.controller.stats.deferrals
        queued = deferrals - self._deferrals_seen
        self._deferrals_seen = deferrals

        if (
            utilization > config.scale_up_utilization
            or queued >= config.scale_up_queue_depth
        ) and len(fleet) < config.max_invokers:
            self._scale_up()
        elif (
            utilization < config.scale_down_utilization
            and len(fleet) > config.min_invokers
        ):
            self._scale_down()

    # ------------------------------------------------------------------ #
    def _scale_up(self) -> None:
        cluster = self.cluster
        invoker_id = self._next_invoker_id
        self._next_invoker_id += 1
        memory_mb = (
            self.config.invoker_memory_mb
            if self.config.invoker_memory_mb is not None
            else cluster.config.invoker_memory_mb
        )
        invoker = cluster.provision_invoker(invoker_id, memory_mb)
        self._last_action_seconds = cluster.loop.now
        cluster.metrics.record_platform_event(
            "scale-up", cluster.loop.now, invoker.invoker_id
        )

    def _scale_down(self) -> None:
        cluster = self.cluster
        # Only a fully idle invoker can leave; prefer the one with the
        # least resident memory (cheapest containers to re-create), ties
        # broken toward the newest invoker (LIFO, the natural elasticity
        # order).
        candidates = [
            inv
            for inv in self.fleet
            if inv.alive and inv.total_in_flight == 0
        ]
        if not candidates:
            return
        victim = min(
            candidates, key=lambda inv: (inv.used_memory_mb, -inv.invoker_id)
        )
        cluster.decommission_invoker(victim)
        self._last_action_seconds = cluster.loop.now
        cluster.metrics.record_platform_event(
            "scale-down", cluster.loop.now, victim.invoker_id
        )
