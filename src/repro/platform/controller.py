"""Controller: policy bookkeeping, scheduling, and pre-warm publication.

The controller is the platform-side home of the keep-alive policy, as in
the paper's OpenWhisk implementation (Section 4.3): every invocation
passes through it, so it maintains the per-application policy state
(histograms for the hybrid policy), attaches the latest keep-alive
parameter to each :class:`~repro.platform.messages.ActivationMessage`,
and publishes pre-warming messages when the policy schedules a reload
ahead of the next expected invocation.

Policy updates happen on activation *completions* (asynchronously, off
the critical path in the real system), matching the paper's production
implementation notes in Section 6.

Under fault injection the controller is also the platform's retry
authority: activations lost to an invoker crash (or shed by a browning-
out degraded invoker) come back through
:meth:`Controller.handle_lost_activations` and are resubmitted (fresh
arrival time, refreshed keep-alive) until the fault plan's retry limit,
then dropped.  Retries and whole-fleet-down deferrals back off
exponentially with seeded jitter.

With a controller crash schedule in the fault plan the controller also
models **failover with at-least-once delivery**: every submission is
written to a replay log *before* dispatch, completions are acknowledged
(and the log entry retired) only while the controller is up, and on
recovery every unacknowledged entry is re-driven.  An execution that
survived the outage then completes twice; completions are deduplicated
by invocation id, upgrading the conservation invariant to
``completed_unique + dropped == submitted`` with a
``duplicate_completions`` counter for the copies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.core.windows import PolicyDecision
from repro.platform.events import EventHandle, EventLoop
from repro.platform.faults import RETRY_STREAM as _RETRY_STREAM
from repro.platform.invoker import Invoker
from repro.platform.loadbalancer import LoadBalancer
from repro.platform.messages import ActivationMessage, CompletionMessage
from repro.platform.metrics import PlatformMetrics
from repro.policies.base import KeepAlivePolicy
from repro.policies.registry import PolicyFactory

SECONDS_PER_MINUTE = 60.0

#: Base delay of the exponential retry/deferral backoff (doubles per
#: attempt, capped, with seeded jitter on top — see ``_retry_delay``).
DEFER_RETRY_SECONDS = 1.0

#: Default cap on the backoff delay (overridden by the fault plan).
RETRY_BACKOFF_CAP_SECONDS = 30.0

#: Policy updates are wall-clock timed one-in-N (always including the
#: first): two ``perf_counter`` calls per completion are measurable at
#: replay scale, and a sampled mean estimates the same overhead number.
POLICY_TIMING_SAMPLE_EVERY = 16


@dataclass
class ControllerStats:
    """Operational counters for the controller itself.

    ``activations`` counts every dispatch, including crash retries and
    redeliveries; ``submissions`` counts unique trace invocations, so
    the conservation invariant under fault injection is
    ``completed_unique + dropped == submissions`` (without controller
    failover no duplicates exist and ``completed_unique`` equals the
    number of recorded completions).
    """

    activations: int = 0
    submissions: int = 0
    crash_retries: int = 0
    dropped: int = 0
    deferrals: int = 0
    prewarm_messages: int = 0
    completed_unique: int = 0
    duplicate_completions: int = 0
    redeliveries: int = 0
    controller_failovers: int = 0
    policy_update_seconds_total: float = 0.0
    policy_updates: int = 0
    policy_update_samples: int = 0

    @property
    def average_policy_update_microseconds(self) -> float:
        """Mean wall-clock cost of one policy update (the paper reports ~836 µs).

        Computed over the sampled updates (see
        :data:`POLICY_TIMING_SAMPLE_EVERY`).
        """
        if self.policy_update_samples == 0:
            return 0.0
        return 1e6 * self.policy_update_seconds_total / self.policy_update_samples


@dataclass
class _AppState:
    policy: KeepAlivePolicy
    latest_decision: PolicyDecision
    memory_mb: float
    # The decision converted to seconds once per policy update, so the
    # (far more frequent) submissions attach it without re-converting.
    keepalive_seconds: float = 0.0
    prewarm_seconds: float = 0.0
    pending_prewarm: EventHandle | None = None


class Controller:
    """Front door of the platform: schedules activations onto invokers."""

    def __init__(
        self,
        *,
        loop: EventLoop,
        load_balancer: LoadBalancer,
        metrics: PlatformMetrics,
        policy_factory: PolicyFactory,
        default_keepalive_seconds: float = 600.0,
        retry_limit: int = 1,
        retry_backoff_base_seconds: float = DEFER_RETRY_SECONDS,
        retry_backoff_cap_seconds: float = RETRY_BACKOFF_CAP_SECONDS,
        retry_jitter_fraction: float = 0.0,
        retry_seed: int = 0,
        failover_enabled: bool = False,
    ) -> None:
        self.loop = loop
        self.load_balancer = load_balancer
        self.metrics = metrics
        self.policy_factory = policy_factory
        self.default_keepalive_seconds = default_keepalive_seconds
        #: Resubmission budget for activations lost to invoker crashes.
        self.retry_limit = retry_limit
        self.retry_backoff_base_seconds = retry_backoff_base_seconds
        self.retry_backoff_cap_seconds = retry_backoff_cap_seconds
        self.retry_jitter_fraction = retry_jitter_fraction
        # The jitter stream is created eagerly but only ever *consumed*
        # on retries and deferrals, which cannot occur without faults —
        # zero-fault replays stay byte-identical.
        self._retry_rng = np.random.default_rng([retry_seed, _RETRY_STREAM])
        #: Optional controller→invoker delivery-delay sampler (wired by
        #: the fault injector, called with the placed invoker); ``None``
        #: keeps the synchronous dispatch path.
        self.activation_delay: Callable[[Invoker], float] | None = None
        self.stats = ControllerStats()
        self._apps: Dict[str, _AppState] = {}
        self._activation_counter = 0
        #: Failover mode: maintain the write-ahead replay log and the
        #: completion dedup set.  Off by default — the extra per-message
        #: bookkeeping stays out of the zero-fault hot path entirely.
        self.failover_enabled = failover_enabled
        self._down = False
        # Write-ahead replay log: unacknowledged activations by id, in
        # submission order (dict insertion order).  An entry is retired
        # when its completion is acknowledged while the controller is up.
        self._inflight_log: Dict[int, ActivationMessage] = {}
        # Invocation ids that have completed at least once (dedup set).
        self._completed_ids: set[int] = set()
        # Copies of each activation currently dispatched somewhere (only
        # maintained in failover mode): redelivery can put two copies of
        # one id in flight, and an id is dropped only when no copy
        # remains and it never completed.
        self._live_copies: Dict[int, int] = {}
        # Scheduled-but-not-yet-dispatched retries and deferrals by id
        # (failover mode): when several copies of one activation are lost
        # in the same fault event, the first loss schedules a retry and a
        # later loss must see it and forget its copy instead of dropping
        # the invocation — otherwise the retried copy completes after the
        # drop and the invocation counts twice.
        self._retry_pending: Dict[int, int] = {}
        for invoker in load_balancer.invokers:
            self.register_invoker(invoker)

    @property
    def down(self) -> bool:
        """Whether the controller is currently failed over."""
        return self._down

    def register_invoker(self, invoker: Invoker) -> None:
        """Wire an invoker's callbacks to this controller (also autoscaling)."""
        invoker.on_completion = self._handle_completion
        invoker.on_activations_lost = self.handle_lost_activations
        if self.failover_enabled:
            invoker.completion_gate = self._completion_gate

    # ------------------------------------------------------------------ #
    def _app_state(self, app_id: str, memory_mb: float) -> _AppState:
        state = self._apps.get(app_id)
        if state is None:
            policy = self.policy_factory.create()
            state = _AppState(
                policy=policy,
                latest_decision=PolicyDecision(
                    prewarm_minutes=0.0,
                    keepalive_minutes=self.default_keepalive_seconds / SECONDS_PER_MINUTE,
                ),
                memory_mb=memory_mb,
                keepalive_seconds=self.default_keepalive_seconds,
                prewarm_seconds=0.0,
            )
            self._apps[app_id] = state
        return state

    # ------------------------------------------------------------------ #
    # Invocation path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        app_id: str,
        function_id: str,
        *,
        execution_seconds: float,
        memory_mb: float,
    ) -> None:
        """Accept one invocation at the current simulation time."""
        state = self._app_state(app_id, memory_mb)
        # A real invocation arriving cancels any pending pre-warm: the load
        # will happen (cold) right now instead.
        if state.pending_prewarm is not None:
            state.pending_prewarm.cancel()
            state.pending_prewarm = None
        self._activation_counter += 1
        self.stats.submissions += 1
        message = ActivationMessage(
            activation_id=self._activation_counter,
            app_id=app_id,
            function_id=function_id,
            arrival_time_seconds=self.loop.now,
            execution_seconds=execution_seconds,
            memory_mb=memory_mb,
            keepalive_seconds=state.keepalive_seconds,
            prewarm_seconds=state.prewarm_seconds,
        )
        if self.failover_enabled:
            # Write-ahead: the log entry exists before any dispatch, so a
            # controller crash between accept and deliver loses nothing.
            self._inflight_log[message.activation_id] = message
        self._dispatch(message)

    def _retry_delay(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter for retries/deferrals."""
        delay = min(
            self.retry_backoff_base_seconds * (2.0 ** attempt),
            self.retry_backoff_cap_seconds,
        )
        jitter = self.retry_jitter_fraction
        if jitter > 0:
            delay *= 1.0 + float(self._retry_rng.uniform(0.0, jitter))
        return delay

    def _dispatch(self, message: ActivationMessage) -> None:
        """Place and deliver one activation (submit, retry, or redelivery)."""
        if self._down:
            # Controller failed over mid-flight: the activation sits in
            # the replay log and is re-driven on recovery.
            return
        placement = self.load_balancer.place(message.app_id, message.memory_mb)
        if placement is None:
            # Whole fleet down: hold the activation and retry placement
            # with exponential backoff — restarts are always scheduled,
            # so this drains.
            self.stats.deferrals += 1
            delay = self._retry_delay(message.defer_attempts)
            message.defer_attempts += 1
            if self.failover_enabled:
                # A deferred copy is neither live nor gone: count it as
                # pending so a concurrent loss of another copy cannot
                # conclude the invocation is unrecoverable and drop it.
                self._mark_retry_pending(message.activation_id)
                self.loop.schedule(
                    delay, lambda: self._dispatch_pending(message)
                )
            else:
                self.loop.schedule(delay, lambda: self._dispatch(message))
            return
        message.defer_attempts = 0
        self.stats.activations += 1
        if self.failover_enabled:
            counts = self._live_copies
            counts[message.activation_id] = counts.get(message.activation_id, 0) + 1
        invoker = placement.invoker
        delay = (
            self.activation_delay(invoker)
            if self.activation_delay is not None
            else 0.0
        )
        if delay > 0:
            self.loop.schedule(delay, lambda: invoker.handle_activation(message))
        else:
            invoker.handle_activation(message)

    # ------------------------------------------------------------------ #
    # Fault handling (crash-lost and brownout-shed activations)
    # ------------------------------------------------------------------ #
    def handle_lost_activations(self, lost: list[ActivationMessage]) -> None:
        """Retry or drop activations whose dispatched copy was lost."""
        failover = self.failover_enabled
        for message in lost:
            if failover:
                activation_id = message.activation_id
                copies = self._live_copies.get(activation_id, 1) - 1
                if copies > 0:
                    self._live_copies[activation_id] = copies
                else:
                    self._live_copies.pop(activation_id, None)
                if activation_id in self._completed_ids:
                    # Another copy already completed: this loss is moot.
                    self._inflight_log.pop(activation_id, None)
                    continue
                if message.retries >= self.retry_limit and (
                    copies > 0 or self._retry_pending.get(activation_id, 0) > 0
                ):
                    # Out of budget, but another copy is still in flight
                    # (or a retry/deferral is already scheduled — a domain
                    # outage can lose several copies in one event, and
                    # the first loss may have queued a retry): forget
                    # this copy instead of dropping the invocation.
                    continue
            if message.retries >= self.retry_limit:
                self.stats.dropped += 1
                self.metrics.record_dropped(message.app_id)
                if failover:
                    self._inflight_log.pop(message.activation_id, None)
                continue
            message.retries += 1
            self.stats.crash_retries += 1
            # The retry is a fresh arrival after a backoff: queueing
            # restarts then, and the keep-alive parameter is refreshed
            # from the current policy state at dispatch time.
            if failover:
                self._mark_retry_pending(message.activation_id)
            delay = self._retry_delay(message.retries - 1)
            self.loop.schedule(delay, lambda message=message: self._redispatch(message))

    def _mark_retry_pending(self, activation_id: int) -> None:
        pending = self._retry_pending
        pending[activation_id] = pending.get(activation_id, 0) + 1

    def _clear_retry_pending(self, activation_id: int) -> None:
        pending = self._retry_pending.get(activation_id, 0) - 1
        if pending > 0:
            self._retry_pending[activation_id] = pending
        else:
            self._retry_pending.pop(activation_id, None)

    def _dispatch_pending(self, message: ActivationMessage) -> None:
        """Run a deferred dispatch, consuming its pending-retry marker."""
        self._clear_retry_pending(message.activation_id)
        self._dispatch(message)

    def _redispatch(self, message: ActivationMessage) -> None:
        """Dispatch a retried activation with refreshed arrival/keep-alive."""
        if self.failover_enabled:
            self._clear_retry_pending(message.activation_id)
            if message.activation_id in self._completed_ids:
                # A surviving duplicate completed during the backoff.
                return
        message.arrival_time_seconds = self.loop.now
        state = self._apps.get(message.app_id)
        if state is not None:
            message.keepalive_seconds = state.keepalive_seconds
            message.prewarm_seconds = state.prewarm_seconds
        self._dispatch(message)

    # ------------------------------------------------------------------ #
    # Controller failover (at-least-once delivery)
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Crash the controller: stop dispatching, acking, and pre-warming."""
        if not self.failover_enabled:
            raise RuntimeError("controller failover is not enabled for this run")
        self._down = True
        self.stats.controller_failovers += 1
        for state in self._apps.values():
            if state.pending_prewarm is not None:
                state.pending_prewarm.cancel()
                state.pending_prewarm = None

    def recover(self) -> None:
        """Fail over: come back up and re-drive the unacknowledged log.

        Entries whose invocation already completed (the ack was lost with
        the controller) are retired without redelivery — the dedup store
        is durable.  Everything else is re-driven in submission order;
        copies still running on an invoker then finish as duplicates and
        are swallowed by the completion gate.
        """
        self._down = False
        for activation_id in list(self._inflight_log):
            if activation_id in self._completed_ids:
                del self._inflight_log[activation_id]
                continue
            message = self._inflight_log[activation_id]
            self.stats.redeliveries += 1
            self.metrics.record_redelivery()
            message.arrival_time_seconds = self.loop.now
            state = self._apps.get(message.app_id)
            if state is not None:
                message.keepalive_seconds = state.keepalive_seconds
                message.prewarm_seconds = state.prewarm_seconds
            self._dispatch(message)

    def _completion_gate(self, completion: CompletionMessage) -> bool:
        """Accept or reject one completion (failover mode only).

        Returns False for duplicates (the invocation id already
        completed); the invoker then neither records nor reports it.
        """
        activation_id = completion.activation_id
        copies = self._live_copies.get(activation_id, 1) - 1
        if copies > 0:
            self._live_copies[activation_id] = copies
        else:
            self._live_copies.pop(activation_id, None)
        if activation_id in self._completed_ids:
            self.stats.duplicate_completions += 1
            self.metrics.record_duplicate_completion(completion.app_id)
            return False
        self._completed_ids.add(activation_id)
        self.stats.completed_unique += 1
        if self._down:
            # The completion happened but its ack is lost with the
            # controller: the log entry stays and is redelivered on
            # recovery, where the dedup set retires it.
            return True
        self._inflight_log.pop(activation_id, None)
        return True

    # ------------------------------------------------------------------ #
    # Completion path (policy updates, pre-warm scheduling)
    # ------------------------------------------------------------------ #
    def _handle_completion(self, completion: CompletionMessage) -> None:
        if not self.failover_enabled:
            self.stats.completed_unique += 1
        elif self._down:
            # The completion was recorded (it is unique) but the
            # controller is down: no policy update, no pre-warm — the
            # standby recovers the policy state from its own log.
            return
        state = self._apps.get(completion.app_id)
        if state is None:  # pragma: no cover - defensive, submit() created it
            return
        stats = self.stats
        sampled = stats.policy_updates % POLICY_TIMING_SAMPLE_EVERY == 0
        if sampled:
            started = time.perf_counter()
        decision = state.policy.on_invocation(
            self.loop.now / SECONDS_PER_MINUTE, cold=completion.cold_start
        )
        if sampled:
            stats.policy_update_seconds_total += time.perf_counter() - started
            stats.policy_update_samples += 1
        stats.policy_updates += 1
        state.latest_decision = decision
        state.keepalive_seconds = decision.keepalive_minutes * SECONDS_PER_MINUTE
        state.prewarm_seconds = decision.prewarm_minutes * SECONDS_PER_MINUTE
        if decision.prewarm_minutes > 0:
            self._schedule_prewarm(completion.app_id, state)

    def _schedule_prewarm(self, app_id: str, state: _AppState) -> None:
        if state.pending_prewarm is not None:
            state.pending_prewarm.cancel()
        delay_seconds = state.prewarm_seconds
        keepalive_seconds = state.keepalive_seconds

        def _fire() -> None:
            state.pending_prewarm = None
            self.stats.prewarm_messages += 1
            placement = self.load_balancer.place(app_id, state.memory_mb)
            if placement is None:
                # Fleet down: a pre-warm is advisory, drop it rather than
                # queueing more work behind the outage.
                return
            placement.invoker.prewarm(app_id, state.memory_mb, keepalive_seconds)

        state.pending_prewarm = self.loop.schedule(delay_seconds, _fire)

    # ------------------------------------------------------------------ #
    def arrival_rate_estimate(self) -> tuple[float, int, int]:
        """Aggregate per-app arrival forecast for the predictive autoscaler.

        Returns ``(rate_per_second, estimated_apps, total_apps)`` where
        the rate sums ``1 / expected_interarrival`` over every app whose
        policy offers a positive forecast (the hybrid policy's histogram
        mean); apps whose policy abstains are counted in ``total_apps``
        only, letting the caller fill their share from observed traffic.
        """
        rate_per_second = 0.0
        estimated = 0
        for state in self._apps.values():
            interarrival_minutes = state.policy.expected_interarrival_minutes()
            if interarrival_minutes is not None and interarrival_minutes > 0:
                rate_per_second += 1.0 / (interarrival_minutes * SECONDS_PER_MINUTE)
                estimated += 1
        return rate_per_second, estimated, len(self._apps)

    def policy_for(self, app_id: str) -> KeepAlivePolicy | None:
        """The per-application policy instance (None before first submit)."""
        state = self._apps.get(app_id)
        return state.policy if state is not None else None

    def drain(self) -> None:
        """Cancel pending pre-warms (end of experiment) and flush invokers."""
        for state in self._apps.values():
            if state.pending_prewarm is not None:
                state.pending_prewarm.cancel()
                state.pending_prewarm = None
        for invoker in self.load_balancer.invokers:
            invoker.flush()
