"""Controller: policy bookkeeping, scheduling, and pre-warm publication.

The controller is the platform-side home of the keep-alive policy, as in
the paper's OpenWhisk implementation (Section 4.3): every invocation
passes through it, so it maintains the per-application policy state
(histograms for the hybrid policy), attaches the latest keep-alive
parameter to each :class:`~repro.platform.messages.ActivationMessage`,
and publishes pre-warming messages when the policy schedules a reload
ahead of the next expected invocation.

Policy updates happen on activation *completions* (asynchronously, off
the critical path in the real system), matching the paper's production
implementation notes in Section 6.

Under fault injection the controller is also the platform's retry
authority: activations lost to an invoker crash come back through
:meth:`Controller.handle_lost_activations` and are resubmitted (fresh
arrival time, refreshed keep-alive) until the fault plan's retry limit,
then dropped — keeping the conservation invariant ``completed + dropped
== submitted``.  When the whole fleet is down, submissions are deferred
and retried on a short timer instead of being lost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.core.windows import PolicyDecision
from repro.platform.events import EventHandle, EventLoop
from repro.platform.invoker import Invoker
from repro.platform.loadbalancer import LoadBalancer
from repro.platform.messages import ActivationMessage, CompletionMessage
from repro.platform.metrics import PlatformMetrics
from repro.policies.base import KeepAlivePolicy
from repro.policies.registry import PolicyFactory

SECONDS_PER_MINUTE = 60.0

#: How long a submission waits before retrying placement when the whole
#: fleet is down (every invoker mid-crash-restart).
DEFER_RETRY_SECONDS = 1.0

#: Policy updates are wall-clock timed one-in-N (always including the
#: first): two ``perf_counter`` calls per completion are measurable at
#: replay scale, and a sampled mean estimates the same overhead number.
POLICY_TIMING_SAMPLE_EVERY = 16


@dataclass
class ControllerStats:
    """Operational counters for the controller itself.

    ``activations`` counts every dispatch, including crash retries;
    ``submissions`` counts unique trace invocations, so the conservation
    invariant under fault injection is ``completed + dropped ==
    submissions``.
    """

    activations: int = 0
    submissions: int = 0
    crash_retries: int = 0
    dropped: int = 0
    deferrals: int = 0
    prewarm_messages: int = 0
    policy_update_seconds_total: float = 0.0
    policy_updates: int = 0
    policy_update_samples: int = 0

    @property
    def average_policy_update_microseconds(self) -> float:
        """Mean wall-clock cost of one policy update (the paper reports ~836 µs).

        Computed over the sampled updates (see
        :data:`POLICY_TIMING_SAMPLE_EVERY`).
        """
        if self.policy_update_samples == 0:
            return 0.0
        return 1e6 * self.policy_update_seconds_total / self.policy_update_samples


@dataclass
class _AppState:
    policy: KeepAlivePolicy
    latest_decision: PolicyDecision
    memory_mb: float
    # The decision converted to seconds once per policy update, so the
    # (far more frequent) submissions attach it without re-converting.
    keepalive_seconds: float = 0.0
    prewarm_seconds: float = 0.0
    pending_prewarm: EventHandle | None = None


class Controller:
    """Front door of the platform: schedules activations onto invokers."""

    def __init__(
        self,
        *,
        loop: EventLoop,
        load_balancer: LoadBalancer,
        metrics: PlatformMetrics,
        policy_factory: PolicyFactory,
        default_keepalive_seconds: float = 600.0,
        retry_limit: int = 1,
    ) -> None:
        self.loop = loop
        self.load_balancer = load_balancer
        self.metrics = metrics
        self.policy_factory = policy_factory
        self.default_keepalive_seconds = default_keepalive_seconds
        #: Resubmission budget for activations lost to invoker crashes.
        self.retry_limit = retry_limit
        #: Optional controller→invoker delivery-delay sampler (wired by the
        #: fault injector); ``None`` keeps the synchronous dispatch path.
        self.activation_delay: Callable[[], float] | None = None
        self.stats = ControllerStats()
        self._apps: Dict[str, _AppState] = {}
        self._activation_counter = 0
        for invoker in load_balancer.invokers:
            self.register_invoker(invoker)

    def register_invoker(self, invoker: Invoker) -> None:
        """Wire an invoker's callbacks to this controller (also autoscaling)."""
        invoker.on_completion = self._handle_completion
        invoker.on_activations_lost = self.handle_lost_activations

    # ------------------------------------------------------------------ #
    def _app_state(self, app_id: str, memory_mb: float) -> _AppState:
        state = self._apps.get(app_id)
        if state is None:
            policy = self.policy_factory.create()
            state = _AppState(
                policy=policy,
                latest_decision=PolicyDecision(
                    prewarm_minutes=0.0,
                    keepalive_minutes=self.default_keepalive_seconds / SECONDS_PER_MINUTE,
                ),
                memory_mb=memory_mb,
                keepalive_seconds=self.default_keepalive_seconds,
                prewarm_seconds=0.0,
            )
            self._apps[app_id] = state
        return state

    # ------------------------------------------------------------------ #
    # Invocation path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        app_id: str,
        function_id: str,
        *,
        execution_seconds: float,
        memory_mb: float,
    ) -> None:
        """Accept one invocation at the current simulation time."""
        state = self._app_state(app_id, memory_mb)
        # A real invocation arriving cancels any pending pre-warm: the load
        # will happen (cold) right now instead.
        if state.pending_prewarm is not None:
            state.pending_prewarm.cancel()
            state.pending_prewarm = None
        self._activation_counter += 1
        self.stats.submissions += 1
        message = ActivationMessage(
            activation_id=self._activation_counter,
            app_id=app_id,
            function_id=function_id,
            arrival_time_seconds=self.loop.now,
            execution_seconds=execution_seconds,
            memory_mb=memory_mb,
            keepalive_seconds=state.keepalive_seconds,
            prewarm_seconds=state.prewarm_seconds,
        )
        self._dispatch(message)

    def _dispatch(self, message: ActivationMessage) -> None:
        """Place and deliver one activation (initial submit or crash retry)."""
        placement = self.load_balancer.place(message.app_id, message.memory_mb)
        if placement is None:
            # Whole fleet down: hold the activation and retry placement
            # shortly — restarts are always scheduled, so this drains.
            self.stats.deferrals += 1
            self.loop.schedule(DEFER_RETRY_SECONDS, lambda: self._dispatch(message))
            return
        self.stats.activations += 1
        delay = self.activation_delay() if self.activation_delay is not None else 0.0
        if delay > 0:
            invoker = placement.invoker
            self.loop.schedule(delay, lambda: invoker.handle_activation(message))
        else:
            placement.invoker.handle_activation(message)

    # ------------------------------------------------------------------ #
    # Fault handling (crash-lost activations)
    # ------------------------------------------------------------------ #
    def handle_lost_activations(self, lost: list[ActivationMessage]) -> None:
        """Retry or drop activations whose invoker crashed mid-execution."""
        for message in lost:
            if message.retries >= self.retry_limit:
                self.stats.dropped += 1
                self.metrics.record_dropped(message.app_id)
                continue
            message.retries += 1
            self.stats.crash_retries += 1
            # The retry is a fresh arrival: queueing restarts now, and the
            # keep-alive parameter is refreshed from the current policy
            # state (it may have changed since the original dispatch).
            message.arrival_time_seconds = self.loop.now
            state = self._apps.get(message.app_id)
            if state is not None:
                message.keepalive_seconds = state.keepalive_seconds
                message.prewarm_seconds = state.prewarm_seconds
            self._dispatch(message)

    # ------------------------------------------------------------------ #
    # Completion path (policy updates, pre-warm scheduling)
    # ------------------------------------------------------------------ #
    def _handle_completion(self, completion: CompletionMessage) -> None:
        state = self._apps.get(completion.app_id)
        if state is None:  # pragma: no cover - defensive, submit() created it
            return
        stats = self.stats
        sampled = stats.policy_updates % POLICY_TIMING_SAMPLE_EVERY == 0
        if sampled:
            started = time.perf_counter()
        decision = state.policy.on_invocation(
            self.loop.now / SECONDS_PER_MINUTE, cold=completion.cold_start
        )
        if sampled:
            stats.policy_update_seconds_total += time.perf_counter() - started
            stats.policy_update_samples += 1
        stats.policy_updates += 1
        state.latest_decision = decision
        state.keepalive_seconds = decision.keepalive_minutes * SECONDS_PER_MINUTE
        state.prewarm_seconds = decision.prewarm_minutes * SECONDS_PER_MINUTE
        if decision.prewarm_minutes > 0:
            self._schedule_prewarm(completion.app_id, state)

    def _schedule_prewarm(self, app_id: str, state: _AppState) -> None:
        if state.pending_prewarm is not None:
            state.pending_prewarm.cancel()
        delay_seconds = state.prewarm_seconds
        keepalive_seconds = state.keepalive_seconds

        def _fire() -> None:
            state.pending_prewarm = None
            self.stats.prewarm_messages += 1
            placement = self.load_balancer.place(app_id, state.memory_mb)
            if placement is None:
                # Fleet down: a pre-warm is advisory, drop it rather than
                # queueing more work behind the outage.
                return
            placement.invoker.prewarm(app_id, state.memory_mb, keepalive_seconds)

        state.pending_prewarm = self.loop.schedule(delay_seconds, _fire)

    # ------------------------------------------------------------------ #
    def policy_for(self, app_id: str) -> KeepAlivePolicy | None:
        """The per-application policy instance (None before first submit)."""
        state = self._apps.get(app_id)
        return state.policy if state is not None else None

    def drain(self) -> None:
        """Cancel pending pre-warms (end of experiment) and flush invokers."""
        for state in self._apps.values():
            if state.pending_prewarm is not None:
                state.pending_prewarm.cancel()
                state.pending_prewarm = None
        for invoker in self.load_balancer.invokers:
            invoker.flush()
