"""Fault injection for the platform substrate: crashes, outages, slowdowns.

A real OpenWhisk deployment misbehaves in more ways than a lost invoker
VM.  Racks and availability zones fail together, taking every invoker in
a *failure domain* down at once; invokers go *slow* (noisy neighbours,
thermal throttling, failing disks) without dying; and the controller
itself crashes and fails over, re-driving its in-flight activations from
a replay log with at-least-once — that is, sometimes duplicate —
delivery.  This module models all of it with two pieces:

* :class:`FaultPlan` — a frozen, **seeded** description of the faults to
  inject: per-invoker crash rate (exponential inter-crash gaps), restart
  delay, controller→invoker message delay (fixed plus uniform jitter),
  per-domain outage rate and duration, per-invoker slowdown rate /
  duration / multipliers (with an optional brownout concurrency cap),
  the controller's MTTF and failover time, and the retry budget plus
  exponential-backoff parameters for lost executions.  The plan is pure
  data: picklable, hashable per campaign cell, and the same plan always
  produces the same schedules.
* :class:`FaultInjector` — schedules the plan's events as ordinary flat
  event records on the cluster's
  :class:`~repro.platform.events.EventLoop` and samples activation
  delays.  A crash calls :meth:`~repro.platform.invoker.Invoker.crash`
  (containers destroyed, in-flight executions lost, keep-alive timers
  dropped) and hands the lost activations to the controller for
  retry-or-drop accounting; a domain outage crashes every invoker of the
  domain together; a slowdown flips an invoker into its degraded state
  (and back); a controller crash fails the controller and schedules its
  recovery (which re-drives the replay log).

Determinism contract: every fault stream is a pure function of the plan
seed plus a stable stream index — the crash schedule of invoker *i* is a
pure function of ``(plan.seed, i)``, the outage schedule of domain *d*
of ``(plan.seed, domain-stream, d)``, the slowdown schedule of invoker
*i* of ``(plan.seed, slow-stream, i)``, and the controller schedule of
``(plan.seed, controller-stream)`` — independent of the balancer
strategy and of how many campaign workers run, so fault campaigns stay
byte-reproducible.  A zero-fault plan schedules nothing and samples
nothing, leaving the replay bit-identical to a run without any plan at
all (locked by ``tests/platform/test_replay_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster wires us)
    from repro.platform.cluster import FaasCluster
    from repro.platform.invoker import Invoker

SECONDS_PER_HOUR = 3600.0

#: Sub-stream index for the message-delay jitter generator, kept clear of
#: the per-invoker crash streams (which use the invoker id).
_DELAY_STREAM = 0x7FFF_FFFF
#: Sub-stream index for per-domain outage schedules.
_DOMAIN_STREAM = 0x7FFF_FFFE
#: Sub-stream index for per-invoker slowdown schedules.
_SLOW_STREAM = 0x7FFF_FFFD
#: Sub-stream index for the controller crash/recovery schedule.
_CONTROLLER_STREAM = 0x7FFF_FFFC
#: Sub-stream index for the controller's retry-backoff jitter.
RETRY_STREAM = 0x7FFF_FFFB


def _exponential_schedule(
    rng: np.random.Generator,
    rate_per_hour: float,
    downtime_seconds: float,
    horizon_seconds: float,
) -> np.ndarray:
    """Event start times: exponential gaps with the downtime inserted.

    The downtime after each event is added to the clock before the next
    gap is drawn, so an entity can never be scheduled to fail while its
    previous failure is still in effect.
    """
    scale = SECONDS_PER_HOUR / rate_per_hour
    times: list[float] = []
    clock = float(rng.exponential(scale))
    while clock < horizon_seconds:
        times.append(clock)
        clock += downtime_seconds + float(rng.exponential(scale))
    return np.asarray(times, dtype=np.float64)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults injected into one replay.

    Attributes:
        crash_rate_per_hour: Mean crashes per invoker per hour; gaps
            between crashes are exponential (a Poisson failure process
            per invoker).  ``0`` disables crashes.
        restart_delay_seconds: How long a crashed invoker stays down
            before rejoining the fleet (empty, cold).
        message_delay_seconds: Fixed controller→invoker activation
            delivery delay.  ``0`` keeps the synchronous fast path.
        message_delay_jitter_seconds: Width of the uniform jitter added
            on top of the fixed delay (sampled from the plan's seed).
        retry_limit: How many times an activation lost to a crash is
            resubmitted before it is dropped.
        seed: Root seed of every fault stream.
        domain_outage_rate_per_hour: Mean correlated outages per failure
            domain per hour; an outage crashes every invoker of the
            domain together.  ``0`` disables domain outages (domains
            come from :attr:`~repro.platform.cluster.ClusterConfig.fault_domains`).
        domain_outage_seconds: How long a domain outage lasts before the
            whole domain restarts together.
        slow_rate_per_hour: Mean slowdown episodes per invoker per hour;
            during an episode the invoker is *degraded*, not dead.
            ``0`` disables slowdowns.
        slow_duration_seconds: Length of one slowdown episode.
        slow_execution_factor: Multiplier (>= 1) applied to container
            start-up and execution time while an invoker is degraded.
        slow_message_delay_factor: Multiplier (>= 1) applied to the
            controller→invoker message delay for a degraded invoker
            (only effective when a message delay is configured).
        brownout_concurrency: When positive, a *degraded* invoker
            rejects new activations above this many concurrent
            executions (brownout-style load shedding; the controller
            retries them elsewhere).  ``0`` disables brownout.
        controller_mttf_hours: Mean time between controller crashes
            (exponential gaps).  ``0`` disables controller failover.
        controller_failover_seconds: How long the controller stays down
            before the standby takes over and re-drives the replay log.
        retry_backoff_base_seconds: First retry/deferral delay of the
            exponential backoff (doubles per attempt).
        retry_backoff_cap_seconds: Upper bound on the backoff delay.
        retry_jitter_fraction: Relative uniform jitter in
            ``[0, fraction]`` multiplied onto each backoff delay
            (sampled from the plan's seed); ``0`` disables jitter.
    """

    crash_rate_per_hour: float = 0.0
    restart_delay_seconds: float = 30.0
    message_delay_seconds: float = 0.0
    message_delay_jitter_seconds: float = 0.0
    retry_limit: int = 1
    seed: int = 0
    domain_outage_rate_per_hour: float = 0.0
    domain_outage_seconds: float = 120.0
    slow_rate_per_hour: float = 0.0
    slow_duration_seconds: float = 300.0
    slow_execution_factor: float = 4.0
    slow_message_delay_factor: float = 4.0
    brownout_concurrency: int = 0
    controller_mttf_hours: float = 0.0
    controller_failover_seconds: float = 5.0
    retry_backoff_base_seconds: float = 1.0
    retry_backoff_cap_seconds: float = 30.0
    retry_jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise ValueError("crash rate must be non-negative")
        if self.restart_delay_seconds <= 0:
            raise ValueError("restart delay must be positive")
        if self.message_delay_seconds < 0:
            raise ValueError("message delay must be non-negative")
        if self.message_delay_jitter_seconds < 0:
            raise ValueError("message delay jitter must be non-negative")
        if self.retry_limit < 0:
            raise ValueError("retry limit must be non-negative")
        if self.domain_outage_rate_per_hour < 0:
            raise ValueError("domain outage rate must be non-negative")
        if self.domain_outage_seconds <= 0:
            raise ValueError("domain outage duration must be positive")
        if self.slow_rate_per_hour < 0:
            raise ValueError("slowdown rate must be non-negative")
        if self.slow_duration_seconds <= 0:
            raise ValueError("slowdown duration must be positive")
        if self.slow_execution_factor < 1.0:
            raise ValueError("slow execution factor must be >= 1")
        if self.slow_message_delay_factor < 1.0:
            raise ValueError("slow message delay factor must be >= 1")
        if self.brownout_concurrency < 0:
            raise ValueError("brownout concurrency must be non-negative")
        if self.controller_mttf_hours < 0:
            raise ValueError("controller MTTF must be non-negative")
        if self.controller_failover_seconds <= 0:
            raise ValueError("controller failover time must be positive")
        if self.retry_backoff_base_seconds <= 0:
            raise ValueError("retry backoff base must be positive")
        if self.retry_backoff_cap_seconds < self.retry_backoff_base_seconds:
            raise ValueError("retry backoff cap must be >= the base delay")
        if self.retry_jitter_fraction < 0:
            raise ValueError("retry jitter fraction must be non-negative")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit zero-fault plan (reproduces a plain replay exactly)."""
        return cls()

    @property
    def has_crashes(self) -> bool:
        return self.crash_rate_per_hour > 0

    @property
    def has_message_delay(self) -> bool:
        return self.message_delay_seconds > 0 or self.message_delay_jitter_seconds > 0

    @property
    def has_domain_outages(self) -> bool:
        return self.domain_outage_rate_per_hour > 0

    @property
    def has_slowdowns(self) -> bool:
        return self.slow_rate_per_hour > 0

    @property
    def has_controller_faults(self) -> bool:
        return self.controller_mttf_hours > 0

    @property
    def is_zero_fault(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not (
            self.has_crashes
            or self.has_message_delay
            or self.has_domain_outages
            or self.has_slowdowns
            or self.has_controller_faults
        )

    def crash_schedule(self, invoker_id: int, horizon_seconds: float) -> np.ndarray:
        """Crash times (seconds) for one invoker within the horizon.

        A pure function of ``(seed, invoker_id)``: exponential gaps at
        ``crash_rate_per_hour``, with the invoker's down time
        (``restart_delay_seconds``) inserted after each crash so an
        invoker can never be scheduled to crash while already down.
        """
        if not self.has_crashes or horizon_seconds <= 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng([self.seed, int(invoker_id)])
        return _exponential_schedule(
            rng, self.crash_rate_per_hour, self.restart_delay_seconds, horizon_seconds
        )

    def domain_outage_schedule(
        self, domain_id: int, horizon_seconds: float
    ) -> np.ndarray:
        """Outage start times for one failure domain within the horizon.

        A pure function of ``(seed, domain_id)``, independent of the
        per-invoker crash streams; the outage duration is inserted after
        each start so a domain can never fail while already down.
        """
        if not self.has_domain_outages or horizon_seconds <= 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng([self.seed, _DOMAIN_STREAM, int(domain_id)])
        return _exponential_schedule(
            rng,
            self.domain_outage_rate_per_hour,
            self.domain_outage_seconds,
            horizon_seconds,
        )

    def slow_schedule(self, invoker_id: int, horizon_seconds: float) -> np.ndarray:
        """Slowdown-episode start times for one invoker within the horizon.

        A pure function of ``(seed, invoker_id)`` on a dedicated
        sub-stream, so slowdowns compose with (and never perturb) the
        same invoker's crash schedule.
        """
        if not self.has_slowdowns or horizon_seconds <= 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng([self.seed, _SLOW_STREAM, int(invoker_id)])
        return _exponential_schedule(
            rng, self.slow_rate_per_hour, self.slow_duration_seconds, horizon_seconds
        )

    def controller_crash_schedule(self, horizon_seconds: float) -> np.ndarray:
        """Controller crash times within the horizon.

        A pure function of the plan seed alone; the failover time is
        inserted after each crash.
        """
        if not self.has_controller_faults or horizon_seconds <= 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng([self.seed, _CONTROLLER_STREAM])
        rate = 1.0 / self.controller_mttf_hours
        return _exponential_schedule(
            rng, rate, self.controller_failover_seconds, horizon_seconds
        )


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a cluster's event loop.

    The injector only touches the *initial* fleet with per-invoker
    streams (crashes, slowdowns): invokers added later by the autoscaler
    never draw from them (their streams would otherwise depend on the
    scaling trajectory, breaking the per-invoker determinism contract).
    Domain outages, by contrast, act on *membership* — whoever is in the
    domain when the outage fires goes down, including autoscaled
    invokers — which is still deterministic because the scaling
    trajectory itself is.
    """

    def __init__(self, plan: FaultPlan, cluster: "FaasCluster") -> None:
        self.plan = plan
        self.cluster = cluster
        self._delay_rng = np.random.default_rng([plan.seed, _DELAY_STREAM])
        self._started = False
        #: Domains currently in outage: their invokers' individual
        #: restarts are suppressed until the domain comes back.
        self._domains_down: set[int] = set()

    def start(self, horizon_seconds: float) -> None:
        """Schedule every fault event within the horizon."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        loop = self.cluster.loop
        plan = self.plan
        if plan.has_crashes:
            for invoker in self.cluster.invokers:
                for crash_time in plan.crash_schedule(
                    invoker.invoker_id, horizon_seconds
                ):
                    loop.schedule_at(
                        float(crash_time),
                        lambda invoker=invoker: self._crash(invoker),
                    )
        if plan.has_domain_outages:
            for domain_id in range(self.cluster.config.fault_domains):
                for outage_time in plan.domain_outage_schedule(
                    domain_id, horizon_seconds
                ):
                    loop.schedule_at(
                        float(outage_time),
                        lambda domain_id=domain_id: self._domain_down(domain_id),
                    )
        if plan.has_slowdowns:
            for invoker in self.cluster.invokers:
                for slow_time in plan.slow_schedule(
                    invoker.invoker_id, horizon_seconds
                ):
                    loop.schedule_at(
                        float(slow_time),
                        lambda invoker=invoker: self._slow_start(invoker),
                    )
        if plan.has_controller_faults:
            for crash_time in plan.controller_crash_schedule(horizon_seconds):
                loop.schedule_at(float(crash_time), self._controller_down)

    # ------------------------------------------------------------------ #
    def activation_delay(self, invoker: "Invoker") -> float:
        """Sample the controller→invoker delivery delay for one activation.

        A degraded target multiplies the sampled delay by the plan's
        ``slow_message_delay_factor`` (its message path is slow too).
        """
        delay = self.plan.message_delay_seconds
        jitter = self.plan.message_delay_jitter_seconds
        if jitter > 0:
            delay += float(self._delay_rng.uniform(0.0, jitter))
        if invoker.degraded:
            delay *= self.plan.slow_message_delay_factor
        return delay

    # ------------------------------------------------------------------ #
    # Invoker crashes
    # ------------------------------------------------------------------ #
    def _crash(self, invoker: "Invoker") -> None:
        if not invoker.alive or invoker.decommissioned:
            # Already down (overlapping schedules cannot happen for the
            # injector's own per-invoker events, but a domain outage or a
            # decommission can race a crash).
            return
        now = self.cluster.loop.now
        lost = invoker.crash()
        metrics = self.cluster.metrics
        metrics.record_crash(invoker.invoker_id, now, lost_in_flight=len(lost))
        self.cluster.controller.handle_lost_activations(lost)
        self.cluster.loop.schedule(
            self.plan.restart_delay_seconds,
            lambda: self._restart(invoker),
        )

    def _restart(self, invoker: "Invoker") -> None:
        if invoker.decommissioned:
            # Scaled in while down: it never rejoins the fleet.
            return
        if invoker.alive:
            # Already restarted (a domain recovery beat this event).
            return
        if self.cluster.config.domain_of(invoker.invoker_id) in self._domains_down:
            # Its whole domain is in outage: the domain recovery restarts
            # it (an individual restart cannot outrun the rack coming back).
            return
        invoker.restart()
        self.cluster.metrics.record_restart(
            invoker.invoker_id, self.cluster.loop.now
        )

    # ------------------------------------------------------------------ #
    # Correlated domain outages
    # ------------------------------------------------------------------ #
    def _domain_down(self, domain_id: int) -> None:
        cluster = self.cluster
        now = cluster.loop.now
        self._domains_down.add(domain_id)
        cluster.metrics.record_domain_outage(domain_id, now)
        for invoker in cluster.invokers:
            if invoker.decommissioned or not invoker.alive:
                continue
            if cluster.config.domain_of(invoker.invoker_id) != domain_id:
                continue
            lost = invoker.crash()
            cluster.metrics.record_crash(
                invoker.invoker_id, now, lost_in_flight=len(lost)
            )
            cluster.controller.handle_lost_activations(lost)
        cluster.loop.schedule(
            self.plan.domain_outage_seconds,
            lambda: self._domain_up(domain_id),
        )

    def _domain_up(self, domain_id: int) -> None:
        cluster = self.cluster
        self._domains_down.discard(domain_id)
        cluster.metrics.record_domain_recovery(domain_id, cluster.loop.now)
        # Every down invoker of the domain rejoins together — including
        # ones that crashed individually before the outage and whose
        # solo restart was suppressed while the domain was dark.
        for invoker in cluster.invokers:
            if invoker.decommissioned or invoker.alive:
                continue
            if cluster.config.domain_of(invoker.invoker_id) != domain_id:
                continue
            invoker.restart()
            cluster.metrics.record_restart(invoker.invoker_id, cluster.loop.now)

    # ------------------------------------------------------------------ #
    # Partial degradation (slow invokers)
    # ------------------------------------------------------------------ #
    def _slow_start(self, invoker: "Invoker") -> None:
        if invoker.decommissioned:
            return
        plan = self.plan
        invoker.degrade(
            plan.slow_execution_factor,
            brownout_concurrency=plan.brownout_concurrency,
        )
        self.cluster.metrics.record_slowdown(
            invoker.invoker_id, self.cluster.loop.now
        )
        self.cluster.loop.schedule(
            plan.slow_duration_seconds, lambda: self._slow_end(invoker)
        )

    def _slow_end(self, invoker: "Invoker") -> None:
        if invoker.decommissioned or not invoker.degraded:
            return
        invoker.recover()
        self.cluster.metrics.record_slowdown_end(
            invoker.invoker_id, self.cluster.loop.now
        )

    # ------------------------------------------------------------------ #
    # Controller failover
    # ------------------------------------------------------------------ #
    def _controller_down(self) -> None:
        controller = self.cluster.controller
        if controller.down:  # pragma: no cover - schedule inserts failover time
            return
        now = self.cluster.loop.now
        controller.fail()
        self.cluster.metrics.record_controller_event("controller-down", now)
        self.cluster.loop.schedule(
            self.plan.controller_failover_seconds, self._controller_up
        )

    def _controller_up(self) -> None:
        controller = self.cluster.controller
        now = self.cluster.loop.now
        self.cluster.metrics.record_controller_event("controller-up", now)
        controller.recover()
