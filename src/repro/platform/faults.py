"""Fault injection for the platform substrate: crashes, restarts, delays.

A real OpenWhisk deployment loses invoker VMs: containers (and the
executions inside them) disappear, keep-alive timers die with the
process, and the activation path between controller and invokers rides a
message bus with non-zero latency.  The replay campaigns of PR 5 never
exercised any of that — every figure was produced on a cluster where
nothing fails.  This module closes the gap with two pieces:

* :class:`FaultPlan` — a frozen, **seeded** description of the faults to
  inject: a per-invoker crash rate (exponential inter-crash gaps), the
  restart delay, controller→invoker message delay (fixed plus uniform
  jitter), and the retry budget for executions lost to a crash.  The
  plan is pure data: picklable, hashable per campaign cell, and the
  same plan always produces the same crash schedule.
* :class:`FaultInjector` — schedules the plan's crash/restart events as
  ordinary flat event records on the cluster's
  :class:`~repro.platform.events.EventLoop` and samples activation
  delays.  A crash calls :meth:`~repro.platform.invoker.Invoker.crash`
  (containers destroyed, in-flight executions lost, keep-alive timers
  dropped), hands the lost activations to the controller for
  retry-or-drop accounting, and schedules the restart.

Determinism contract: the crash schedule of invoker *i* is a pure
function of ``(plan.seed, i)`` — independent of every other invoker, of
the balancer strategy, and of how many campaign workers run — so fault
campaigns stay byte-reproducible.  A zero-fault plan schedules nothing
and samples nothing, leaving the replay bit-identical to a run without
any plan at all (locked by ``tests/platform/test_replay_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster wires us)
    from repro.platform.cluster import FaasCluster
    from repro.platform.invoker import Invoker

SECONDS_PER_HOUR = 3600.0

#: Sub-stream index for the message-delay jitter generator, kept clear of
#: the per-invoker crash streams (which use the invoker id).
_DELAY_STREAM = 0x7FFF_FFFF


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults injected into one replay.

    Attributes:
        crash_rate_per_hour: Mean crashes per invoker per hour; gaps
            between crashes are exponential (a Poisson failure process
            per invoker).  ``0`` disables crashes.
        restart_delay_seconds: How long a crashed invoker stays down
            before rejoining the fleet (empty, cold).
        message_delay_seconds: Fixed controller→invoker activation
            delivery delay.  ``0`` keeps the synchronous fast path.
        message_delay_jitter_seconds: Width of the uniform jitter added
            on top of the fixed delay (sampled from the plan's seed).
        retry_limit: How many times an activation lost to a crash is
            resubmitted before it is dropped.
        seed: Root seed of every fault stream.
    """

    crash_rate_per_hour: float = 0.0
    restart_delay_seconds: float = 30.0
    message_delay_seconds: float = 0.0
    message_delay_jitter_seconds: float = 0.0
    retry_limit: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise ValueError("crash rate must be non-negative")
        if self.restart_delay_seconds <= 0:
            raise ValueError("restart delay must be positive")
        if self.message_delay_seconds < 0:
            raise ValueError("message delay must be non-negative")
        if self.message_delay_jitter_seconds < 0:
            raise ValueError("message delay jitter must be non-negative")
        if self.retry_limit < 0:
            raise ValueError("retry limit must be non-negative")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit zero-fault plan (reproduces a plain replay exactly)."""
        return cls()

    @property
    def has_crashes(self) -> bool:
        return self.crash_rate_per_hour > 0

    @property
    def has_message_delay(self) -> bool:
        return self.message_delay_seconds > 0 or self.message_delay_jitter_seconds > 0

    @property
    def is_zero_fault(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not self.has_crashes and not self.has_message_delay

    def crash_schedule(self, invoker_id: int, horizon_seconds: float) -> np.ndarray:
        """Crash times (seconds) for one invoker within the horizon.

        A pure function of ``(seed, invoker_id)``: exponential gaps at
        ``crash_rate_per_hour``, with the invoker's down time
        (``restart_delay_seconds``) inserted after each crash so an
        invoker can never be scheduled to crash while already down.
        """
        if not self.has_crashes or horizon_seconds <= 0:
            return np.empty(0, dtype=np.float64)
        rng = np.random.default_rng([self.seed, int(invoker_id)])
        scale = SECONDS_PER_HOUR / self.crash_rate_per_hour
        times: list[float] = []
        clock = float(rng.exponential(scale))
        while clock < horizon_seconds:
            times.append(clock)
            clock += self.restart_delay_seconds + float(rng.exponential(scale))
        return np.asarray(times, dtype=np.float64)


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a cluster's event loop.

    The injector only touches the *initial* fleet: invokers added later
    by the autoscaler never crash (their crash streams would otherwise
    depend on the scaling trajectory, breaking the per-invoker
    determinism contract).
    """

    def __init__(self, plan: FaultPlan, cluster: "FaasCluster") -> None:
        self.plan = plan
        self.cluster = cluster
        self._delay_rng = np.random.default_rng([plan.seed, _DELAY_STREAM])
        self._started = False

    def start(self, horizon_seconds: float) -> None:
        """Schedule every crash (and implied restart) within the horizon."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        if not self.plan.has_crashes:
            return
        for invoker in self.cluster.invokers:
            for crash_time in self.plan.crash_schedule(
                invoker.invoker_id, horizon_seconds
            ):
                self.cluster.loop.schedule_at(
                    float(crash_time),
                    lambda invoker=invoker: self._crash(invoker),
                )

    # ------------------------------------------------------------------ #
    def activation_delay(self) -> float:
        """Sample the controller→invoker delivery delay for one activation."""
        delay = self.plan.message_delay_seconds
        jitter = self.plan.message_delay_jitter_seconds
        if jitter > 0:
            delay += float(self._delay_rng.uniform(0.0, jitter))
        return delay

    # ------------------------------------------------------------------ #
    def _crash(self, invoker: "Invoker") -> None:
        if not invoker.alive or invoker.decommissioned:
            # Already down (overlapping schedules cannot happen for the
            # injector's own events, but a decommission can race a crash).
            return
        now = self.cluster.loop.now
        lost = invoker.crash()
        metrics = self.cluster.metrics
        metrics.record_crash(invoker.invoker_id, now, lost_in_flight=len(lost))
        self.cluster.controller.handle_lost_activations(lost)
        self.cluster.loop.schedule(
            self.plan.restart_delay_seconds,
            lambda: self._restart(invoker),
        )

    def _restart(self, invoker: "Invoker") -> None:
        if invoker.decommissioned:
            # Scaled in while down: it never rejoins the fleet.
            return
        invoker.restart()
        self.cluster.metrics.record_restart(
            invoker.invoker_id, self.cluster.loop.now
        )
