"""Cluster assembly: wire the event loop, invokers, balancer, and controller.

The default configuration mirrors the paper's OpenWhisk deployment
(Section 5.1): one controller plus 18 invoker VMs, each with a few GB of
memory for worker containers.  Beyond the paper's single shape, the
configuration spans the scenario axes the replay campaigns sweep:
invoker-count scaling, per-invoker memory pressure, heterogeneous
per-invoker memory (:attr:`ClusterConfig.invoker_memories_mb`), the
load-balancer strategy (:attr:`ClusterConfig.balancer`), fault injection
(:attr:`ClusterConfig.fault_plan`), and invoker autoscaling
(:attr:`ClusterConfig.autoscaler`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.platform.autoscaler import Autoscaler, AutoscalerConfig
from repro.platform.controller import Controller
from repro.platform.events import EventLoop, SubmissionSource
from repro.platform.faults import FaultInjector, FaultPlan
from repro.platform.invoker import ColdStartModel, Invoker
from repro.platform.loadbalancer import BALANCER_STRATEGIES, make_balancer
from repro.platform.metrics import PlatformMetrics
from repro.policies.registry import PolicyFactory


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and latency parameters of the simulated FaaS cluster.

    Attributes:
        num_invokers: Number of invoker VMs (18 in the paper's experiment).
        invoker_memory_mb: Container memory budget per invoker (the paper's
            invoker VMs have 4 GB; a slice is reserved for the system).
        invoker_memories_mb: Optional heterogeneous per-invoker memory
            budgets; when set it must list exactly ``num_invokers``
            values and overrides ``invoker_memory_mb``.
        container_start_mean_seconds: Mean container cold-start latency.
        runtime_bootstrap_seconds: Extra execution time paid by cold
            invocations for language-runtime start-up.
        overload_threshold: Memory-load fraction above which the balancer
            skips an invoker.
        seed: Seed for the latency-sampling random generator.
        balancer: Load-balancing strategy (one of
            :data:`~repro.platform.loadbalancer.BALANCER_STRATEGIES`).
        fault_plan: Optional fault-injection plan (invoker crashes,
            domain outages, slowdowns, controller failover,
            controller→invoker message delay); ``None`` disables faults.
        autoscaler: Optional autoscaling rules; ``None`` keeps the fleet
            fixed at ``num_invokers``.
        fault_domains: Number of correlated failure domains (racks /
            zones).  Invoker *i* belongs to domain ``i % fault_domains``
            — autoscaled invokers included — so a domain outage in the
            fault plan takes every member down together.
    """

    num_invokers: int = 18
    invoker_memory_mb: float = 3584.0
    invoker_memories_mb: tuple[float, ...] | None = None
    container_start_mean_seconds: float = 1.2
    runtime_bootstrap_seconds: float = 0.35
    overload_threshold: float = 0.9
    seed: int = 1
    balancer: str = "ring"
    fault_plan: FaultPlan | None = None
    autoscaler: AutoscalerConfig | None = None
    fault_domains: int = 1

    def __post_init__(self) -> None:
        if self.num_invokers < 1:
            raise ValueError("cluster needs at least one invoker")
        if self.fault_domains < 1:
            raise ValueError("cluster needs at least one failure domain")
        if self.invoker_memory_mb <= 0:
            raise ValueError("invoker memory must be positive")
        if self.invoker_memories_mb is not None:
            memories = tuple(float(m) for m in self.invoker_memories_mb)
            object.__setattr__(self, "invoker_memories_mb", memories)
            if len(memories) != self.num_invokers:
                raise ValueError(
                    "invoker_memories_mb must list one budget per invoker "
                    f"({len(memories)} values for {self.num_invokers} invokers)"
                )
            if any(m <= 0 for m in memories):
                raise ValueError("invoker memory must be positive")
        if self.container_start_mean_seconds <= 0:
            raise ValueError("container start latency must be positive")
        if self.runtime_bootstrap_seconds < 0:
            raise ValueError("runtime bootstrap latency must be non-negative")
        if self.balancer not in BALANCER_STRATEGIES:
            raise ValueError(
                f"unknown balancer strategy {self.balancer!r}; "
                f"expected one of {BALANCER_STRATEGIES}"
            )
        if self.autoscaler is not None:
            if not (
                self.autoscaler.min_invokers
                <= self.num_invokers
                <= self.autoscaler.max_invokers
            ):
                raise ValueError(
                    "initial fleet size must sit inside the autoscaler's "
                    f"[{self.autoscaler.min_invokers}, "
                    f"{self.autoscaler.max_invokers}] bounds"
                )

    @classmethod
    def heterogeneous(
        cls, invoker_memories_mb: tuple[float, ...] | list[float], **kwargs
    ) -> "ClusterConfig":
        """A cluster whose invoker count follows the per-invoker budgets."""
        memories = tuple(float(m) for m in invoker_memories_mb)
        return cls(
            num_invokers=len(memories), invoker_memories_mb=memories, **kwargs
        )

    def memory_plan(self) -> tuple[float, ...]:
        """The per-invoker memory budgets this configuration describes."""
        if self.invoker_memories_mb is not None:
            return self.invoker_memories_mb
        return (self.invoker_memory_mb,) * self.num_invokers

    def domain_of(self, invoker_id: int) -> int:
        """Failure domain of an invoker (round-robin rack assignment)."""
        return invoker_id % self.fault_domains

    def scaled(self, num_invokers: int) -> "ClusterConfig":
        """The same cluster with a different (homogeneous) invoker count."""
        return replace(self, num_invokers=num_invokers, invoker_memories_mb=None)


class FaasCluster:
    """A fully wired FaaS platform instance for one experiment run."""

    def __init__(self, policy_factory: PolicyFactory, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        self.loop = EventLoop()
        self.metrics = PlatformMetrics()
        self._cold_start_model = ColdStartModel(
            container_start_mean_seconds=self.config.container_start_mean_seconds,
            runtime_bootstrap_seconds=self.config.runtime_bootstrap_seconds,
        )
        rng = np.random.default_rng(self.config.seed)
        self.invokers = [
            Invoker(
                invoker_id=index,
                memory_capacity_mb=memory_mb,
                loop=self.loop,
                metrics=self.metrics,
                cold_start_model=self._cold_start_model,
                rng=np.random.default_rng(rng.integers(0, 2**63 - 1)),
            )
            for index, memory_mb in enumerate(self.config.memory_plan())
        ]
        self.load_balancer = make_balancer(
            self.config.balancer,
            self.invokers,
            overload_threshold=self.config.overload_threshold,
        )
        plan = self.config.fault_plan
        if plan is not None:
            self.controller = Controller(
                loop=self.loop,
                load_balancer=self.load_balancer,
                metrics=self.metrics,
                policy_factory=policy_factory,
                retry_limit=plan.retry_limit,
                retry_backoff_base_seconds=plan.retry_backoff_base_seconds,
                retry_backoff_cap_seconds=plan.retry_backoff_cap_seconds,
                retry_jitter_fraction=plan.retry_jitter_fraction,
                retry_seed=plan.seed,
                failover_enabled=plan.has_controller_faults,
            )
        else:
            self.controller = Controller(
                loop=self.loop,
                load_balancer=self.load_balancer,
                metrics=self.metrics,
                policy_factory=policy_factory,
            )
        self.fault_injector: FaultInjector | None = None
        if plan is not None and not plan.is_zero_fault:
            self.fault_injector = FaultInjector(plan, self)
            if plan.has_message_delay:
                self.controller.activation_delay = self.fault_injector.activation_delay
        self.autoscaler: Autoscaler | None = None
        if self.config.autoscaler is not None:
            self.autoscaler = Autoscaler(self, self.config.autoscaler)

    # ------------------------------------------------------------------ #
    # Fleet elasticity (used by the autoscaler)
    # ------------------------------------------------------------------ #
    def provision_invoker(self, invoker_id: int, memory_mb: float) -> Invoker:
        """Create, register, and return a fresh invoker (scale-out).

        The latency RNG is seeded from ``(cluster seed, invoker id)`` — not
        drawn from the construction-time stream — so provisioning order and
        campaign worker count cannot change any invoker's random stream.
        """
        invoker = Invoker(
            invoker_id=invoker_id,
            memory_capacity_mb=memory_mb,
            loop=self.loop,
            metrics=self.metrics,
            cold_start_model=self._cold_start_model,
            rng=np.random.default_rng([self.config.seed, invoker_id]),
        )
        self.invokers.append(invoker)
        self.controller.register_invoker(invoker)
        self.load_balancer.add_invoker(invoker)
        return invoker

    def decommission_invoker(self, invoker: Invoker) -> None:
        """Retire an idle invoker (scale-in) and drop it from the balancer."""
        invoker.decommission()
        self.load_balancer.remove_invoker(invoker)

    # ------------------------------------------------------------------ #
    @property
    def total_memory_mb(self) -> float:
        return float(sum(self.config.memory_plan()))

    def run(
        self,
        until_seconds: float | None = None,
        *,
        source: SubmissionSource | None = None,
        horizon_seconds: float | None = None,
    ) -> PlatformMetrics:
        """Run the event loop to completion (or a horizon) and finalize metrics.

        Args:
            until_seconds: Optional horizon for the event loop.
            source: Optional submission source (the columnar replay
                feed's cursor) merged with the event stream.
            horizon_seconds: Workload horizon for the fault injector and
                autoscaler (crashes and scaling ticks are only scheduled
                up to this time, so the loop still drains).  Required when
                the cluster has either subsystem configured.
        """
        if self.fault_injector is not None or self.autoscaler is not None:
            if horizon_seconds is None:
                raise ValueError(
                    "horizon_seconds is required with fault injection or "
                    "autoscaling enabled (their schedules must be bounded)"
                )
            if self.fault_injector is not None:
                self.fault_injector.start(horizon_seconds)
            if self.autoscaler is not None:
                self.autoscaler.start(horizon_seconds)
        end = self.loop.run(until_seconds, source=source)
        self.controller.drain()
        # Draining may schedule nothing, but unloads are immediate; record the
        # observation window end for memory averaging.
        self.metrics.finish(end)
        return self.metrics
