"""Discrete-event simulation engine for the FaaS platform substrate.

A minimal, deterministic event loop: events are ``[time, sequence,
callback, cancelled]`` records ordered by time with FIFO tie-breaking,
and the simulation advances by draining the earliest timestamp.  All
platform components (controller, invokers, containers) schedule their
work through one :class:`EventLoop` instance, which makes the whole
platform reproducible and easy to unit-test.

Three properties matter for replaying production-scale traces:

* **flat event records** — events are plain lists, so the heap compares
  ``(time, sequence)`` prefixes at C speed instead of dispatching into a
  generated dataclass ``__lt__`` for every sift;
* **batched drain** — :meth:`EventLoop.run` pops *every* event sharing
  the earliest timestamp in one go and then executes the batch in FIFO
  order, so bursts of same-timestamp events (completion storms, expiring
  keep-alives) cost one horizon check instead of one per event;
* **submission sources** — instead of pre-scheduling one closure per
  trace invocation into the heap, a cursor-driven
  :class:`SubmissionSource` (the columnar replay feed) is merged with
  the event stream at run time: the loop interleaves ``source.emit()``
  calls with event batches in global time order, with submissions
  winning ties, exactly as if every submission had been scheduled before
  any dynamic event.  The heap then only ever holds the *in-flight*
  events (executions, keep-alive expiries, pre-warms), not the whole
  trace.

The loop has two interchangeable cores.  The **heapq core** keeps the
event records directly in a C ``heapq`` list — dependency-light, the
tier-1 default.  The **array core** keeps the heap as preallocated flat
``(times, eids)`` arrays sifted by the kernels in
:mod:`repro.platform.event_kernels`, which numba jit-compiles when it is
importable; event ids index a side list of records carrying the Python
callbacks.  Both cores order events by ``(time, sequence)`` and share
the merge/batch semantics above, so their replays are byte-identical —
the core is a performance choice, selected per loop by the
``REPRO_COMPILED`` environment variable (``0`` forces heapq, ``1``
forces the array core even without numba, unset picks the array core
exactly when numba compiled the kernels) or the ``core`` constructor
argument.

Times are in **seconds** inside the platform substrate (container starts
and function executions are sub-minute); the trace replayer converts from
the trace's minutes at the boundary.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Callable, Optional, Protocol

import numpy as np

from repro.platform import event_kernels
from repro.platform.event_kernels import heap_pop_batch, heap_push

#: Field offsets of an event record ``[time, sequence, callback, cancelled]``.
_TIME, _SEQUENCE, _CALLBACK, _CANCELLED = 0, 1, 2, 3

#: Initial capacity of the array core's heap (doubles on demand).
_INITIAL_HEAP_CAPACITY = 1024

#: Batch buffer for same-timestamp drains; overflowing batches loop.
_BATCH_CAPACITY = 128


def _select_core(requested: str | None) -> str:
    """Resolve the event-loop core name (see the module docstring)."""
    if requested is None:
        requested = os.environ.get("REPRO_COMPILED", "auto")
    value = str(requested).strip().lower() or "auto"
    if value in ("0", "heapq", "python", "fallback"):
        return "heapq"
    if value in ("1", "array", "compiled"):
        return "array"
    if value == "auto":
        return "array" if event_kernels.NUMBA_COMPILED else "heapq"
    raise ValueError(
        f"unknown event-loop core {requested!r}; expected 'heapq', 'array', "
        "'auto', or a REPRO_COMPILED value of 0/1"
    )


class SubmissionSource(Protocol):
    """A cursor of externally driven work merged with the event stream.

    The loop repeatedly asks for :meth:`next_time` and, when the cursor's
    timestamp is at or before the earliest queued event, advances the
    clock to it and calls :meth:`emit` (which typically submits one trace
    invocation to the controller and moves the cursor forward).
    Submissions at the same timestamp as queued events run *first* —
    mirroring the reference path, where every submission was scheduled
    before any dynamic event and therefore carried a lower sequence
    number.

    Sources may additionally provide ``emit_next() -> float | None``,
    fusing one :meth:`emit` with the following :meth:`next_time`; the
    loop prefers it when present (one Python call per submission instead
    of two on a path crossed hundreds of thousands of times per replay).
    """

    def next_time(self) -> float | None:
        """Timestamp of the next submission, or ``None`` when drained."""
        ...

    def emit(self) -> None:
        """Perform the next submission at the current loop time."""
        ...


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: list) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self._event[_CANCELLED]

    @property
    def time(self) -> float:
        return self._event[_TIME]


class EventLoop:
    """Deterministic discrete-event loop with batched same-time draining.

    Args:
        core: ``"heapq"``, ``"array"``, or ``"auto"`` (the default:
            resolve from ``REPRO_COMPILED``, preferring the array core
            when numba jitted its kernels).  Both cores are semantically
            identical; see the module docstring.
    """

    def __init__(self, core: str | None = None) -> None:
        self.core = _select_core(core)
        #: Current simulation time in seconds.  A plain attribute (it is
        #: read on every scheduling decision of every platform component);
        #: only the loop itself writes it.
        self.now = 0.0
        self._processed = 0
        self._use_array = self.core == "array"
        if self._use_array:
            self._heap_times = np.empty(_INITIAL_HEAP_CAPACITY, dtype=np.float64)
            self._heap_eids = np.empty(_INITIAL_HEAP_CAPACITY, dtype=np.int64)
            self._heap_size = 0
            #: Event records indexed by eid; executed/cancelled slots are
            #: dropped to ``None`` at pop time to release callbacks.
            self._events: list[list | None] = []
            self._batch_out = np.empty(_BATCH_CAPACITY, dtype=np.int64)
            self._single_out = np.empty(1, dtype=np.int64)
        else:
            self._queue: list[list] = []
            self._sequence = itertools.count()

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        if self._use_array:
            return self._heap_size
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of callbacks (and source submissions) executed so far."""
        return self._processed

    def schedule(self, delay_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_seconds`` from now."""
        if delay_seconds < 0:
            raise ValueError("cannot schedule an event in the past")
        if self._use_array:
            return self._push_array(self.now + delay_seconds, callback)
        # Inlined schedule_at (one event per execution makes this hot).
        event = [self.now + delay_seconds, next(self._sequence), callback, False]
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time_seconds < self.now:
            raise ValueError(
                f"cannot schedule at {time_seconds} before current time {self.now}"
            )
        if self._use_array:
            return self._push_array(float(time_seconds), callback)
        event = [float(time_seconds), next(self._sequence), callback, False]
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def _push_array(self, time_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Array-core push: record the event and sift it into the heap."""
        events = self._events
        eid = len(events)
        event = [time_seconds, eid, callback, False]
        events.append(event)
        size = self._heap_size
        if size == self._heap_times.shape[0]:
            self._heap_times = np.concatenate(
                [self._heap_times, np.empty_like(self._heap_times)]
            )
            self._heap_eids = np.concatenate(
                [self._heap_eids, np.empty_like(self._heap_eids)]
            )
        heap_push(self._heap_times, self._heap_eids, size, time_seconds, eid)
        self._heap_size = size + 1
        return EventHandle(event)

    def run(
        self,
        until_seconds: Optional[float] = None,
        *,
        source: SubmissionSource | None = None,
    ) -> float:
        """Run until the queue (and the source) drain or the horizon is hit.

        Args:
            until_seconds: Optional horizon; events (and submissions)
                scheduled after it stay put and the clock stops at the
                horizon.
            source: Optional :class:`SubmissionSource` merged with the
                event stream in time order (submissions first on ties).

        Returns:
            The simulation time when the run stopped.
        """
        if self._use_array:
            return self._run_array(until_seconds, source)
        return self._run_heapq(until_seconds, source)

    def _run_heapq(
        self, until_seconds: Optional[float], source: SubmissionSource | None
    ) -> float:
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        if source is not None:
            next_submission = source.next_time()
            emit_next = getattr(source, "emit_next", None)
        else:
            next_submission = None
            emit_next = None
        while True:
            head_time = queue[0][_TIME] if queue else None
            if next_submission is not None and (
                head_time is None or next_submission <= head_time
            ):
                # Submission next; ties go to the source (see class docs).
                if until_seconds is not None and next_submission > until_seconds:
                    break
                self.now = next_submission
                if emit_next is not None:
                    next_submission = emit_next()
                else:
                    source.emit()  # type: ignore[union-attr]
                    next_submission = source.next_time()  # type: ignore[union-attr]
                processed += 1
                continue
            if head_time is None:
                break
            if until_seconds is not None and head_time > until_seconds:
                break
            # Batched drain: pop every event sharing the earliest timestamp,
            # then execute in FIFO (sequence) order.  Cancellation is checked
            # at execution time, so an earlier callback in the batch can
            # still cancel a later one; the clock only advances when a
            # callback actually runs (cancelled stragglers do not move it).
            # The one-event batch (the common case) skips the batch list.
            event = heappop(queue)
            if not (queue and queue[0][_TIME] == head_time):
                if not event[_CANCELLED]:
                    self.now = head_time
                    event[_CALLBACK]()
                    processed += 1
                continue
            batch = [event]
            while queue and queue[0][_TIME] == head_time:
                batch.append(heappop(queue))
            for event in batch:
                if not event[_CANCELLED]:
                    self.now = head_time
                    event[_CALLBACK]()
                    processed += 1
        self._processed += processed
        if until_seconds is not None and until_seconds > self.now:
            self.now = until_seconds
        return self.now

    def _run_array(
        self, until_seconds: Optional[float], source: SubmissionSource | None
    ) -> float:
        """Array-core run loop: kernel-sifted heap, same merge semantics.

        Only the head peek and the pop/push sifts differ from the heapq
        core; batch collection, tie rules, cancellation, and the horizon
        checks are line-for-line the same, which is what the
        compiled-vs-fallback byte-identity suite locks down.
        """
        events = self._events
        out = self._batch_out
        batch_capacity = out.shape[0]
        processed = 0
        if source is not None:
            next_submission = source.next_time()
            emit_next = getattr(source, "emit_next", None)
        else:
            next_submission = None
            emit_next = None
        while True:
            size = self._heap_size
            # The heap arrays are re-read every iteration: a callback (or
            # an emitted submission) may have grown and replaced them.
            times = self._heap_times
            head_time = times[0] if size else None
            if next_submission is not None and (
                head_time is None or next_submission <= head_time
            ):
                if until_seconds is not None and next_submission > until_seconds:
                    break
                self.now = next_submission
                if emit_next is not None:
                    next_submission = emit_next()
                else:
                    source.emit()  # type: ignore[union-attr]
                    next_submission = source.next_time()  # type: ignore[union-attr]
                processed += 1
                continue
            if head_time is None:
                break
            if until_seconds is not None and head_time > until_seconds:
                break
            head = float(head_time)
            count = heap_pop_batch(times, self._heap_eids, size, out)
            self._heap_size = size - count
            if count == 1:
                eid = out[0]
                event = events[eid]
                events[eid] = None
                if not event[_CANCELLED]:
                    self.now = head
                    event[_CALLBACK]()
                    processed += 1
                continue
            batch = out[:count].tolist()
            # A batch larger than the buffer continues popping until the
            # head moves past the batch timestamp; the whole batch is
            # collected before any callback runs, so a callback scheduling
            # at the same timestamp starts a *new* batch (as in the
            # reference core).
            while count == batch_capacity and self._heap_size and times[0] == head_time:
                count = heap_pop_batch(times, self._heap_eids, self._heap_size, out)
                self._heap_size -= count
                batch.extend(out[:count].tolist())
            for eid in batch:
                event = events[eid]
                events[eid] = None
                if not event[_CANCELLED]:
                    self.now = head
                    event[_CALLBACK]()
                    processed += 1
        self._processed += processed
        if until_seconds is not None and until_seconds > self.now:
            self.now = until_seconds
        return self.now

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; returns False when empty."""
        if self._use_array:
            out = self._single_out
            events = self._events
            while self._heap_size:
                self._heap_size -= heap_pop_batch(
                    self._heap_times, self._heap_eids, self._heap_size, out
                )
                eid = out[0]
                event = events[eid]
                events[eid] = None
                if event[_CANCELLED]:
                    continue
                self.now = event[_TIME]
                event[_CALLBACK]()
                self._processed += 1
                return True
            return False
        while self._queue:
            event = heapq.heappop(self._queue)
            if event[_CANCELLED]:
                continue
            self.now = event[_TIME]
            event[_CALLBACK]()
            self._processed += 1
            return True
        return False
