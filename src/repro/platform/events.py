"""Discrete-event simulation engine for the FaaS platform substrate.

A minimal, deterministic event loop: events are ``(time, sequence,
callback)`` triples ordered by time with FIFO tie-breaking, and the
simulation advances by popping the earliest event.  All platform
components (controller, invokers, containers) schedule their work through
one :class:`EventLoop` instance, which makes the whole platform
reproducible and easy to unit-test.

Times are in **seconds** inside the platform substrate (container starts
and function executions are sub-minute); the trace replayer converts from
the trace's minutes at the boundary.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def schedule(self, delay_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_seconds`` from now."""
        if delay_seconds < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay_seconds, callback)

    def schedule_at(self, time_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time_seconds < self._now:
            raise ValueError(
                f"cannot schedule at {time_seconds} before current time {self._now}"
            )
        event = _ScheduledEvent(
            time=float(time_seconds), sequence=next(self._sequence), callback=callback
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(self, until_seconds: Optional[float] = None) -> float:
        """Run until the queue drains or the horizon is reached.

        Args:
            until_seconds: Optional horizon; events scheduled after it stay
                in the queue and the clock stops at the horizon.

        Returns:
            The simulation time when the run stopped.
        """
        while self._queue:
            event = self._queue[0]
            if until_seconds is not None and event.time > until_seconds:
                self._now = until_seconds
                return self._now
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
        if until_seconds is not None:
            self._now = max(self._now, until_seconds)
        return self._now

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; returns False when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False
