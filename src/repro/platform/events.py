"""Discrete-event simulation engine for the FaaS platform substrate.

A minimal, deterministic event loop: events are ``[time, sequence,
callback, cancelled]`` records ordered by time with FIFO tie-breaking,
and the simulation advances by draining the earliest timestamp.  All
platform components (controller, invokers, containers) schedule their
work through one :class:`EventLoop` instance, which makes the whole
platform reproducible and easy to unit-test.

Three properties matter for replaying production-scale traces:

* **flat event records** — events are plain lists, so the heap compares
  ``(time, sequence)`` prefixes at C speed instead of dispatching into a
  generated dataclass ``__lt__`` for every sift;
* **batched drain** — :meth:`EventLoop.run` pops *every* event sharing
  the earliest timestamp in one go and then executes the batch in FIFO
  order, so bursts of same-timestamp events (completion storms, expiring
  keep-alives) cost one horizon check instead of one per event;
* **submission sources** — instead of pre-scheduling one closure per
  trace invocation into the heap, a cursor-driven
  :class:`SubmissionSource` (the columnar replay feed) is merged with
  the event stream at run time: the loop interleaves ``source.emit()``
  calls with event batches in global time order, with submissions
  winning ties, exactly as if every submission had been scheduled before
  any dynamic event.  The heap then only ever holds the *in-flight*
  events (executions, keep-alive expiries, pre-warms), not the whole
  trace.

Times are in **seconds** inside the platform substrate (container starts
and function executions are sub-minute); the trace replayer converts from
the trace's minutes at the boundary.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional, Protocol

#: Field offsets of an event record ``[time, sequence, callback, cancelled]``.
_TIME, _SEQUENCE, _CALLBACK, _CANCELLED = 0, 1, 2, 3


class SubmissionSource(Protocol):
    """A cursor of externally driven work merged with the event stream.

    The loop repeatedly asks for :meth:`next_time` and, when the cursor's
    timestamp is at or before the earliest queued event, advances the
    clock to it and calls :meth:`emit` (which typically submits one trace
    invocation to the controller and moves the cursor forward).
    Submissions at the same timestamp as queued events run *first* —
    mirroring the reference path, where every submission was scheduled
    before any dynamic event and therefore carried a lower sequence
    number.
    """

    def next_time(self) -> float | None:
        """Timestamp of the next submission, or ``None`` when drained."""
        ...

    def emit(self) -> None:
        """Perform the next submission at the current loop time."""
        ...


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: list) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event[_CANCELLED] = True

    @property
    def cancelled(self) -> bool:
        return self._event[_CANCELLED]

    @property
    def time(self) -> float:
        return self._event[_TIME]


class EventLoop:
    """Deterministic discrete-event loop with batched same-time draining."""

    def __init__(self) -> None:
        self._queue: list[list] = []
        self._sequence = itertools.count()
        #: Current simulation time in seconds.  A plain attribute (it is
        #: read on every scheduling decision of every platform component);
        #: only the loop itself writes it.
        self.now = 0.0
        self._processed = 0

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of callbacks (and source submissions) executed so far."""
        return self._processed

    def schedule(self, delay_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_seconds`` from now."""
        if delay_seconds < 0:
            raise ValueError("cannot schedule an event in the past")
        # Inlined schedule_at (one event per execution makes this hot).
        event = [self.now + delay_seconds, next(self._sequence), callback, False]
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time_seconds: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time_seconds < self.now:
            raise ValueError(
                f"cannot schedule at {time_seconds} before current time {self.now}"
            )
        event = [float(time_seconds), next(self._sequence), callback, False]
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(
        self,
        until_seconds: Optional[float] = None,
        *,
        source: SubmissionSource | None = None,
    ) -> float:
        """Run until the queue (and the source) drain or the horizon is hit.

        Args:
            until_seconds: Optional horizon; events (and submissions)
                scheduled after it stay put and the clock stops at the
                horizon.
            source: Optional :class:`SubmissionSource` merged with the
                event stream in time order (submissions first on ties).

        Returns:
            The simulation time when the run stopped.
        """
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        next_submission = source.next_time() if source is not None else None
        while True:
            head_time = queue[0][_TIME] if queue else None
            if next_submission is not None and (
                head_time is None or next_submission <= head_time
            ):
                # Submission next; ties go to the source (see class docs).
                if until_seconds is not None and next_submission > until_seconds:
                    break
                self.now = next_submission
                source.emit()  # type: ignore[union-attr]
                processed += 1
                next_submission = source.next_time()  # type: ignore[union-attr]
                continue
            if head_time is None:
                break
            if until_seconds is not None and head_time > until_seconds:
                break
            # Batched drain: pop every event sharing the earliest timestamp,
            # then execute in FIFO (sequence) order.  Cancellation is checked
            # at execution time, so an earlier callback in the batch can
            # still cancel a later one; the clock only advances when a
            # callback actually runs (cancelled stragglers do not move it).
            # The one-event batch (the common case) skips the batch list.
            event = heappop(queue)
            if not (queue and queue[0][_TIME] == head_time):
                if not event[_CANCELLED]:
                    self.now = head_time
                    event[_CALLBACK]()
                    processed += 1
                continue
            batch = [event]
            while queue and queue[0][_TIME] == head_time:
                batch.append(heappop(queue))
            for event in batch:
                if not event[_CANCELLED]:
                    self.now = head_time
                    event[_CALLBACK]()
                    processed += 1
        self._processed += processed
        if until_seconds is not None and until_seconds > self.now:
            self.now = until_seconds
        return self.now

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event; returns False when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event[_CANCELLED]:
                continue
            self.now = event[_TIME]
            event[_CALLBACK]()
            self._processed += 1
            return True
        return False
