"""Platform-level metrics collected during a replay (Section 5.3).

The OpenWhisk experiment of the paper reports, per policy:

* the per-application cold-start percentage CDF (Figure 20);
* the average memory consumption of worker containers across the invoker
  VMs (the hybrid policy reduced it by 15.6%);
* the average and 99th-percentile function execution latency (reduced by
  32.5% and 82.4% respectively, thanks to warm runtimes);
* the policy's own decision overhead (measured separately by the
  micro-benchmarks).

:class:`PlatformMetrics` accumulates the raw observations during the
replay and exposes those summaries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.platform.messages import CompletionMessage


@dataclass
class AppInvocationStats:
    """Per-application counters."""

    invocations: int = 0
    cold_starts: int = 0

    @property
    def cold_start_percentage(self) -> float:
        if self.invocations == 0:
            return 0.0
        return 100.0 * self.cold_starts / self.invocations


class PlatformMetrics:
    """Accumulates completions and invoker memory usage over a replay."""

    def __init__(self) -> None:
        self._per_app: dict[str, AppInvocationStats] = defaultdict(AppInvocationStats)
        self._completions: list[CompletionMessage] = []
        # Memory integral per invoker: MB × seconds of loaded containers.
        self._memory_mb_seconds: dict[int, float] = defaultdict(float)
        self._observation_end_seconds = 0.0
        self._prewarm_loads = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_completion(self, completion: CompletionMessage) -> None:
        stats = self._per_app[completion.app_id]
        stats.invocations += 1
        if completion.cold_start:
            stats.cold_starts += 1
        self._completions.append(completion)

    def record_container_unload(
        self, invoker_id: int, memory_mb: float, loaded_seconds: float
    ) -> None:
        """Account a container's full residency when it is unloaded."""
        self._memory_mb_seconds[invoker_id] += memory_mb * max(loaded_seconds, 0.0)

    def record_prewarm_load(self) -> None:
        self._prewarm_loads += 1

    def record_eviction(self) -> None:
        self._evictions += 1

    def finish(self, end_time_seconds: float) -> None:
        """Mark the end of the observation window."""
        self._observation_end_seconds = max(self._observation_end_seconds, end_time_seconds)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    @property
    def total_invocations(self) -> int:
        return len(self._completions)

    @property
    def total_cold_starts(self) -> int:
        return sum(1 for completion in self._completions if completion.cold_start)

    @property
    def prewarm_loads(self) -> int:
        return self._prewarm_loads

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def per_app(self) -> Mapping[str, AppInvocationStats]:
        return dict(self._per_app)

    def app_cold_start_percentages(self) -> np.ndarray:
        return np.asarray(
            [stats.cold_start_percentage for stats in self._per_app.values()], dtype=float
        )

    def cold_start_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) of the per-application cold-start percentage (Figure 20)."""
        values = np.sort(self.app_cold_start_percentages())
        grid = np.linspace(0.0, 100.0, 101)
        if values.size == 0:
            return grid, np.zeros_like(grid)
        fractions = np.searchsorted(values, grid, side="right") / values.size
        return grid, fractions

    def third_quartile_cold_start_percentage(self) -> float:
        values = self.app_cold_start_percentages()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, 75))

    def latencies_seconds(self) -> np.ndarray:
        """End-to-end latencies (queue + start-up + execution) in seconds."""
        return np.asarray(
            [completion.end_to_end_seconds for completion in self._completions], dtype=float
        )

    def execution_seconds(self, *, include_startup: bool = True) -> np.ndarray:
        """Observed execution times; cold runtime bootstrap counts when included."""
        if include_startup:
            return np.asarray(
                [c.startup_seconds + c.execution_seconds for c in self._completions],
                dtype=float,
            )
        return np.asarray([c.execution_seconds for c in self._completions], dtype=float)

    def average_latency_seconds(self) -> float:
        values = self.latencies_seconds()
        return float(values.mean()) if values.size else 0.0

    def p99_latency_seconds(self) -> float:
        values = self.latencies_seconds()
        return float(np.percentile(values, 99)) if values.size else 0.0

    def total_memory_mb_seconds(self) -> float:
        """Aggregate container residency across all invokers (MB·seconds)."""
        return float(sum(self._memory_mb_seconds.values()))

    def average_memory_mb(self) -> float:
        """Average loaded-container memory across the observation window."""
        if self._observation_end_seconds <= 0:
            return 0.0
        return self.total_memory_mb_seconds() / self._observation_end_seconds

    def per_invoker_memory_mb_seconds(self) -> Mapping[int, float]:
        return dict(self._memory_mb_seconds)

    def summary(self) -> dict[str, float]:
        return {
            "total_invocations": float(self.total_invocations),
            "total_cold_starts": float(self.total_cold_starts),
            "cold_start_pct": (
                100.0 * self.total_cold_starts / self.total_invocations
                if self.total_invocations
                else 0.0
            ),
            "third_quartile_app_cold_start_pct": self.third_quartile_cold_start_percentage(),
            "average_latency_seconds": self.average_latency_seconds(),
            "p99_latency_seconds": self.p99_latency_seconds(),
            "average_memory_mb": self.average_memory_mb(),
            "memory_mb_seconds": self.total_memory_mb_seconds(),
            "prewarm_loads": float(self.prewarm_loads),
            "evictions": float(self.evictions),
        }
