"""Platform-level metrics collected during a replay (Section 5.3).

The OpenWhisk experiment of the paper reports, per policy:

* the per-application cold-start percentage CDF (Figure 20);
* the average memory consumption of worker containers across the invoker
  VMs (the hybrid policy reduced it by 15.6%);
* the average and 99th-percentile function execution latency (reduced by
  32.5% and 82.4% respectively, thanks to warm runtimes);
* the policy's own decision overhead (measured separately by the
  micro-benchmarks).

:class:`PlatformMetrics` accumulates the raw observations during the
replay and exposes those summaries.  Internally the per-completion
observations live in **columnar accumulators** — flat append-only
columns (application code, cold flag, queued/startup/execution seconds)
plus a string-to-code table for application ids — so recording a
completion is a handful of C-level appends and every summary (CDFs,
per-app cold-start percentages, latency percentiles) is an array
reduction over the columns instead of a Python loop over message
objects.  At production replay scale (hundreds of thousands of
completions) this is what keeps the metrics layer off the critical path.

Fault injection and elasticity add a second family of observations:
invoker crashes and restarts, invocations dropped after exhausting the
crash-retry budget, **crash-induced cold starts** (the first cold start
an application pays because its warm container died with its invoker),
and the fleet-size timeline sampled by the autoscaler.  These arrive as
flat platform-event records (kind code, time, invoker id) in the same
columnar style, so a fault-free replay records nothing extra.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.platform.messages import CompletionMessage


@dataclass
class AppInvocationStats:
    """Per-application counters."""

    invocations: int = 0
    cold_starts: int = 0

    @property
    def cold_start_percentage(self) -> float:
        if self.invocations == 0:
            return 0.0
        return 100.0 * self.cold_starts / self.invocations


#: Platform-event kinds, in code order (the event column stores codes;
#: new kinds are appended so historical codes stay stable).  For
#: ``domain-down``/``domain-up`` the invoker column carries the *domain*
#: id; for the controller kinds it is unused (-1).
PLATFORM_EVENT_KINDS: tuple[str, ...] = (
    "crash",
    "restart",
    "scale-up",
    "scale-down",
    "domain-down",
    "domain-up",
    "slow-start",
    "slow-end",
    "controller-down",
    "controller-up",
)
_EVENT_CODE = {kind: code for code, kind in enumerate(PLATFORM_EVENT_KINDS)}


def _column(values: array, dtype: np.dtype | type) -> np.ndarray:
    """Numpy copy of an ``array`` column (one C memcpy).

    A copy rather than a ``frombuffer`` view: a view would export the
    column's buffer and make any later ``append`` (recording while a
    caller still holds the array) raise ``BufferError``.
    """
    if not len(values):
        return np.empty(0, dtype=dtype)
    return np.frombuffer(values, dtype=dtype).copy()


class PlatformMetrics:
    """Accumulates completions and invoker memory usage over a replay.

    Completion observations are stored as aligned flat columns in
    first-recorded order; application ids are interned to integer codes
    in first-seen order (matching the insertion order the dict-based
    implementation exposed through :attr:`per_app`).
    """

    def __init__(self) -> None:
        # Columnar completion accumulators, aligned element for element.
        self._app_code_of: dict[str, int] = {}
        self._completion_app = array("q")  # application code per completion
        self._completion_cold = array("b")  # 1 for cold starts
        self._completion_queued = array("d")
        self._completion_startup = array("d")
        self._completion_execution = array("d")
        # Memory integral per invoker: MB × seconds of loaded containers.
        self._memory_mb_seconds: dict[int, float] = defaultdict(float)
        self._evictions_by_invoker: dict[int, int] = defaultdict(int)
        self._observation_end_seconds = 0.0
        self._prewarm_loads = 0
        self._evictions = 0
        # Fault/elasticity timeline: flat (kind code, time, invoker id)
        # records, plus the fleet-size samples the autoscaler emits.
        self._event_kind = array("b")
        self._event_time = array("d")
        self._event_invoker = array("q")
        self._fleet_time = array("d")
        self._fleet_size = array("q")
        self._invoker_crashes = 0
        self._invoker_restarts = 0
        self._crash_lost_in_flight = 0
        self._dropped = 0
        self._crash_cold_starts = 0
        self._domain_outages = 0
        self._slowdowns = 0
        self._brownout_rejections = 0
        self._controller_failovers = 0
        self._duplicate_completions = 0
        self._redeliveries = 0
        # Applications whose warm container was destroyed by a crash and
        # that have not completed an invocation since: their next cold
        # start is attributed to the crash.
        self._crash_victims: set[str] = set()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        app_id: str,
        cold: bool,
        queued_seconds: float,
        startup_seconds: float,
        execution_seconds: float,
    ) -> None:
        """Record one completion from scalars (the invoker's hot path)."""
        codes = self._app_code_of
        code = codes.get(app_id)
        if code is None:
            code = codes[app_id] = len(codes)
        self._completion_app.append(code)
        self._completion_cold.append(1 if cold else 0)
        self._completion_queued.append(queued_seconds)
        self._completion_startup.append(startup_seconds)
        self._completion_execution.append(execution_seconds)
        if self._crash_victims and app_id in self._crash_victims:
            # First completion since a crash destroyed the app's warm
            # container: a cold start here was crash-induced; a warm one
            # means another container survived — either way, resolved.
            if cold:
                self._crash_cold_starts += 1
            self._crash_victims.discard(app_id)

    def record_completion(self, completion: CompletionMessage) -> None:
        self.record(
            completion.app_id,
            completion.cold_start,
            completion.queued_seconds,
            completion.startup_seconds,
            completion.execution_seconds,
        )

    def record_container_unload(
        self,
        invoker_id: int,
        memory_mb: float,
        loaded_seconds: float,
        *,
        reason: str = "",
        app_id: str | None = None,
    ) -> None:
        """Account a container's full residency when it is unloaded."""
        self._memory_mb_seconds[invoker_id] += memory_mb * max(loaded_seconds, 0.0)
        if reason == "invoker-crash" and app_id is not None:
            self._crash_victims.add(app_id)

    def record_prewarm_load(self) -> None:
        self._prewarm_loads += 1

    def record_eviction(self, invoker_id: int | None = None) -> None:
        self._evictions += 1
        if invoker_id is not None:
            self._evictions_by_invoker[invoker_id] += 1

    # ------------------------------------------------------------------ #
    # Fault / elasticity recording
    # ------------------------------------------------------------------ #
    def record_platform_event(
        self, kind: str, time_seconds: float, invoker_id: int = -1
    ) -> None:
        """Append one flat platform-event record (crash/restart/scaling)."""
        self._event_kind.append(_EVENT_CODE[kind])
        self._event_time.append(time_seconds)
        self._event_invoker.append(invoker_id)

    def record_crash(
        self, invoker_id: int, time_seconds: float, *, lost_in_flight: int = 0
    ) -> None:
        self._invoker_crashes += 1
        self._crash_lost_in_flight += lost_in_flight
        self.record_platform_event("crash", time_seconds, invoker_id)

    def record_restart(self, invoker_id: int, time_seconds: float) -> None:
        self._invoker_restarts += 1
        self.record_platform_event("restart", time_seconds, invoker_id)

    def record_dropped(self, app_id: str) -> None:
        """An invocation exhausted its crash-retry budget and was lost."""
        del app_id  # per-app drop attribution is not summarized (yet)
        self._dropped += 1

    def record_domain_outage(self, domain_id: int, time_seconds: float) -> None:
        """A failure domain went dark (the invoker column stores the domain)."""
        self._domain_outages += 1
        self.record_platform_event("domain-down", time_seconds, domain_id)

    def record_domain_recovery(self, domain_id: int, time_seconds: float) -> None:
        self.record_platform_event("domain-up", time_seconds, domain_id)

    def record_slowdown(self, invoker_id: int, time_seconds: float) -> None:
        """An invoker entered its degraded (slow) state."""
        self._slowdowns += 1
        self.record_platform_event("slow-start", time_seconds, invoker_id)

    def record_slowdown_end(self, invoker_id: int, time_seconds: float) -> None:
        self.record_platform_event("slow-end", time_seconds, invoker_id)

    def record_brownout_rejection(self, invoker_id: int) -> None:
        """A degraded invoker shed an activation above its concurrency cap."""
        del invoker_id  # per-invoker attribution is not summarized (yet)
        self._brownout_rejections += 1

    def record_controller_event(self, kind: str, time_seconds: float) -> None:
        """Controller failover lifecycle (``controller-down``/``controller-up``)."""
        if kind == "controller-down":
            self._controller_failovers += 1
        self.record_platform_event(kind, time_seconds)

    def record_duplicate_completion(self, app_id: str) -> None:
        """A completion whose invocation id already completed (at-least-once)."""
        del app_id  # duplicates are a count; the unique completion is recorded
        self._duplicate_completions += 1

    def record_redelivery(self) -> None:
        """An in-flight activation re-driven from the controller replay log."""
        self._redeliveries += 1

    def record_fleet_size(self, time_seconds: float, size: int) -> None:
        """Sample the in-service fleet size (autoscaler ticks and events)."""
        self._fleet_time.append(time_seconds)
        self._fleet_size.append(size)

    def finish(self, end_time_seconds: float) -> None:
        """Mark the end of the observation window."""
        self._observation_end_seconds = max(self._observation_end_seconds, end_time_seconds)

    # ------------------------------------------------------------------ #
    # Columns (read-only views used by the summaries)
    # ------------------------------------------------------------------ #
    @property
    def app_codes(self) -> np.ndarray:
        """Application code of every completion, recording order."""
        return _column(self._completion_app, np.int64)

    @property
    def cold_flags(self) -> np.ndarray:
        """Cold-start flag (0/1) of every completion, recording order."""
        return _column(self._completion_cold, np.int8)

    @property
    def app_ids(self) -> tuple[str, ...]:
        """Application ids in first-seen (code) order."""
        return tuple(self._app_code_of)

    def _per_app_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """(invocations, cold starts) per application code."""
        num_apps = len(self._app_code_of)
        codes = self.app_codes
        invocations = np.bincount(codes, minlength=num_apps)
        cold = np.bincount(codes[self.cold_flags != 0], minlength=num_apps)
        return invocations, cold

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    @property
    def total_invocations(self) -> int:
        return len(self._completion_app)

    @property
    def total_cold_starts(self) -> int:
        return int(np.count_nonzero(self.cold_flags))

    @property
    def prewarm_loads(self) -> int:
        return self._prewarm_loads

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def invoker_crashes(self) -> int:
        return self._invoker_crashes

    @property
    def invoker_restarts(self) -> int:
        return self._invoker_restarts

    @property
    def crash_lost_in_flight(self) -> int:
        """Executions that were running on an invoker when it crashed."""
        return self._crash_lost_in_flight

    @property
    def dropped_invocations(self) -> int:
        """Invocations lost for good (crash-retry budget exhausted)."""
        return self._dropped

    @property
    def crash_cold_starts(self) -> int:
        """Cold starts attributable to a crash destroying a warm container."""
        return self._crash_cold_starts

    @property
    def domain_outages(self) -> int:
        """Correlated failure-domain outages injected during the replay."""
        return self._domain_outages

    @property
    def slowdowns(self) -> int:
        """Degradation episodes (invokers entering the slow state)."""
        return self._slowdowns

    @property
    def brownout_rejections(self) -> int:
        """Activations shed by degraded invokers above their concurrency cap."""
        return self._brownout_rejections

    @property
    def controller_failovers(self) -> int:
        """Controller crash/failover cycles during the replay."""
        return self._controller_failovers

    @property
    def duplicate_completions(self) -> int:
        """Completions deduplicated by invocation id (at-least-once delivery)."""
        return self._duplicate_completions

    @property
    def redeliveries(self) -> int:
        """Activations re-driven from the controller replay log on recovery."""
        return self._redeliveries

    def events_of_kind(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, invoker/domain ids) of one platform-event kind.

        The id column holds invoker ids for crash/restart/scaling/slow
        events, *domain* ids for ``domain-down``/``domain-up``, and -1
        for the controller kinds.
        """
        code = _EVENT_CODE[kind]
        kinds, times, ids = self.platform_events()
        mask = kinds == code
        return times[mask], ids[mask]

    def domain_outage_timeline(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, domain ids, down flags) of every domain outage edge."""
        kinds, times, ids = self.platform_events()
        mask = (kinds == _EVENT_CODE["domain-down"]) | (
            kinds == _EVENT_CODE["domain-up"]
        )
        return times[mask], ids[mask], kinds[mask] == _EVENT_CODE["domain-down"]

    def degradation_timeline(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, invoker ids, degraded flags) of every slowdown edge."""
        kinds, times, ids = self.platform_events()
        mask = (kinds == _EVENT_CODE["slow-start"]) | (
            kinds == _EVENT_CODE["slow-end"]
        )
        return times[mask], ids[mask], kinds[mask] == _EVENT_CODE["slow-start"]

    def evictions_by_invoker(self) -> Mapping[int, int]:
        """Memory-pressure evictions per invoker id."""
        return dict(self._evictions_by_invoker)

    def platform_events(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(kind codes, times, invoker ids) of every fault/scaling event.

        Kind codes index :data:`PLATFORM_EVENT_KINDS`.
        """
        return (
            _column(self._event_kind, np.int8),
            _column(self._event_time, np.float64),
            _column(self._event_invoker, np.int64),
        )

    def fleet_size_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, in-service fleet sizes) sampled over the replay."""
        return (
            _column(self._fleet_time, np.float64),
            _column(self._fleet_size, np.int64),
        )

    @property
    def per_app(self) -> Mapping[str, AppInvocationStats]:
        invocations, cold = self._per_app_counts()
        return {
            app_id: AppInvocationStats(
                invocations=int(invocations[code]), cold_starts=int(cold[code])
            )
            for app_id, code in self._app_code_of.items()
        }

    def app_cold_start_percentages(self) -> np.ndarray:
        invocations, cold = self._per_app_counts()
        return np.divide(
            100.0 * cold,
            invocations,
            out=np.zeros(invocations.size, dtype=float),
            where=invocations > 0,
        )

    def cold_start_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) of the per-application cold-start percentage (Figure 20)."""
        values = np.sort(self.app_cold_start_percentages())
        grid = np.linspace(0.0, 100.0, 101)
        if values.size == 0:
            return grid, np.zeros_like(grid)
        fractions = np.searchsorted(values, grid, side="right") / values.size
        return grid, fractions

    def third_quartile_cold_start_percentage(self) -> float:
        values = self.app_cold_start_percentages()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, 75))

    def latencies_seconds(self) -> np.ndarray:
        """End-to-end latencies (queue + start-up + execution) in seconds."""
        return (
            _column(self._completion_queued, np.float64)
            + _column(self._completion_startup, np.float64)
            + _column(self._completion_execution, np.float64)
        )

    def execution_seconds(self, *, include_startup: bool = True) -> np.ndarray:
        """Observed execution times; cold runtime bootstrap counts when included."""
        execution = _column(self._completion_execution, np.float64)
        if include_startup:
            return _column(self._completion_startup, np.float64) + execution
        return execution

    def average_latency_seconds(self) -> float:
        values = self.latencies_seconds()
        return float(values.mean()) if values.size else 0.0

    def p99_latency_seconds(self) -> float:
        values = self.latencies_seconds()
        return float(np.percentile(values, 99)) if values.size else 0.0

    def total_memory_mb_seconds(self) -> float:
        """Aggregate container residency across all invokers (MB·seconds)."""
        return float(sum(self._memory_mb_seconds.values()))

    def average_memory_mb(self) -> float:
        """Average loaded-container memory across the observation window."""
        if self._observation_end_seconds <= 0:
            return 0.0
        return self.total_memory_mb_seconds() / self._observation_end_seconds

    def per_invoker_memory_mb_seconds(self) -> Mapping[int, float]:
        return dict(self._memory_mb_seconds)

    def summary(self) -> dict[str, float]:
        return {
            "total_invocations": float(self.total_invocations),
            "total_cold_starts": float(self.total_cold_starts),
            "cold_start_pct": (
                100.0 * self.total_cold_starts / self.total_invocations
                if self.total_invocations
                else 0.0
            ),
            "third_quartile_app_cold_start_pct": self.third_quartile_cold_start_percentage(),
            "average_latency_seconds": self.average_latency_seconds(),
            "p99_latency_seconds": self.p99_latency_seconds(),
            "average_memory_mb": self.average_memory_mb(),
            "memory_mb_seconds": self.total_memory_mb_seconds(),
            "prewarm_loads": float(self.prewarm_loads),
            "evictions": float(self.evictions),
            "invoker_crashes": float(self._invoker_crashes),
            "invoker_restarts": float(self._invoker_restarts),
            "crash_lost_in_flight": float(self._crash_lost_in_flight),
            "dropped_invocations": float(self._dropped),
            "crash_cold_starts": float(self._crash_cold_starts),
            "domain_outages": float(self._domain_outages),
            "slowdowns": float(self._slowdowns),
            "brownout_rejections": float(self._brownout_rejections),
            "controller_failovers": float(self._controller_failovers),
            "duplicate_completions": float(self._duplicate_completions),
            "redeliveries": float(self._redeliveries),
            "min_fleet_size": float(min(self._fleet_size)) if self._fleet_size else 0.0,
            "max_fleet_size": float(max(self._fleet_size)) if self._fleet_size else 0.0,
            "final_fleet_size": float(self._fleet_size[-1]) if self._fleet_size else 0.0,
        }
