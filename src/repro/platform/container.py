"""Application containers hosted by invokers.

A container corresponds to a loaded application image (the unit of
keep-alive in the paper).  Its lifecycle mirrors OpenWhisk's
``ContainerProxy``: created cold (paying a start-up latency), it serves
invocations, goes idle, and is unloaded when its keep-alive window —
carried on each :class:`~repro.platform.messages.ActivationMessage` —
expires, or when the invoker needs to reclaim memory, or when the policy
unloads it eagerly to pre-warm later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ContainerState(enum.Enum):
    """Lifecycle states of an application container."""

    STARTING = "starting"
    IDLE = "idle"
    BUSY = "busy"
    UNLOADED = "unloaded"


@dataclass(slots=True)
class Container:
    """One loaded application image on one invoker.

    Attributes:
        app_id: Application the container hosts.
        memory_mb: Resident memory while loaded.
        created_at_seconds: Time the container started loading.
        warm_at_seconds: Time the container finished loading (end of the
            cold-start latency); invocations arriving earlier queue behind
            the start-up.
        concurrency_limit: Maximum simultaneous in-flight invocations the
            container accepts (Azure Functions warms the whole application,
            and per the paper capacity-induced cold starts affect <1% of
            applications, so the default is generous).
    """

    app_id: str
    memory_mb: float
    created_at_seconds: float
    warm_at_seconds: float
    concurrency_limit: int = 64
    state: ContainerState = ContainerState.STARTING
    in_flight: int = 0
    last_idle_at_seconds: float = field(default=0.0)
    total_invocations: int = 0
    unloaded_at_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("container memory must be positive")
        if self.warm_at_seconds < self.created_at_seconds:
            raise ValueError("container cannot become warm before it is created")
        if self.concurrency_limit < 1:
            raise ValueError("concurrency limit must be at least 1")
        self.last_idle_at_seconds = self.warm_at_seconds

    # ------------------------------------------------------------------ #
    @property
    def is_loaded(self) -> bool:
        return self.state is not ContainerState.UNLOADED

    @property
    def is_idle(self) -> bool:
        return self.state is ContainerState.IDLE

    def has_capacity(self) -> bool:
        """Whether the container can accept one more concurrent invocation."""
        return self.is_loaded and self.in_flight < self.concurrency_limit

    # ------------------------------------------------------------------ #
    def mark_warm(self, now_seconds: float) -> None:
        """Transition from STARTING to IDLE once the start-up completes."""
        if self.state is not ContainerState.STARTING:
            return
        self.state = ContainerState.IDLE if self.in_flight == 0 else ContainerState.BUSY
        self.last_idle_at_seconds = now_seconds

    def begin_invocation(self, now_seconds: float) -> None:
        """Account for one invocation starting on this container."""
        state = self.state
        if state is ContainerState.UNLOADED:
            raise RuntimeError(f"container for {self.app_id} is unloaded")
        if self.in_flight >= self.concurrency_limit:
            raise RuntimeError(f"container for {self.app_id} is at its concurrency limit")
        self.in_flight += 1
        self.total_invocations += 1
        if state is not ContainerState.STARTING:
            self.state = ContainerState.BUSY
        del now_seconds

    def end_invocation(self, now_seconds: float) -> None:
        """Account for one invocation finishing on this container."""
        if self.in_flight <= 0:
            raise RuntimeError(f"container for {self.app_id} has no in-flight invocations")
        self.in_flight -= 1
        if self.in_flight == 0 and self.state is ContainerState.BUSY:
            self.state = ContainerState.IDLE
            self.last_idle_at_seconds = now_seconds

    def unload(self, now_seconds: float) -> float:
        """Unload the container and return the loaded duration in seconds."""
        if self.state is ContainerState.UNLOADED:
            return 0.0
        if self.in_flight > 0:
            raise RuntimeError(f"cannot unload busy container for {self.app_id}")
        self.state = ContainerState.UNLOADED
        self.unloaded_at_seconds = now_seconds
        return max(now_seconds - self.created_at_seconds, 0.0)

    def destroy(self, now_seconds: float) -> float:
        """Forcibly unload (invoker crash): in-flight executions are lost.

        Unlike :meth:`unload`, a busy or still-starting container is torn
        down too — the host process died under it.  Returns the loaded
        duration for memory accounting.
        """
        if self.state is ContainerState.UNLOADED:
            return 0.0
        self.state = ContainerState.UNLOADED
        self.in_flight = 0
        self.unloaded_at_seconds = now_seconds
        return max(now_seconds - self.created_at_seconds, 0.0)

    def loaded_seconds(self, now_seconds: float) -> float:
        """Time the container has been loaded so far."""
        end = self.unloaded_at_seconds if self.unloaded_at_seconds is not None else now_seconds
        return max(end - self.created_at_seconds, 0.0)

    def idle_seconds(self, now_seconds: float) -> float:
        """How long the container has currently been idle (0 when busy)."""
        if self.state is not ContainerState.IDLE:
            return 0.0
        return max(now_seconds - self.last_idle_at_seconds, 0.0)
