"""Fused generate→simulate pipeline: trace chunks flow straight into the engine.

The million-app path without the disk round-trip: chunks come off
:func:`repro.trace.stream.iter_chunk_columns` (optionally produced by
parallel generation workers), are materialized one at a time as small
:class:`~repro.trace.store.InvocationStore` blocks, and are simulated
immediately by the same engine routes a full-store run would use.  The
bounded producer/consumer window of the chunk iterator gives natural
backpressure — generation never runs ahead of simulation by more than a
few chunks, so peak memory is one window of chunks plus ``O(num_apps)``
result rows, regardless of invocation count.

Because every engine route simulates applications independently, the
concatenated per-chunk results equal a run over the full store: a bare
store weighs every application 1 MB in both paths, and per-app metrics
never look across application boundaries.  The equality is pinned per
route by ``tests/simulation/test_fused.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.simulation.metrics import AggregateResult, AppSimResult
from repro.simulation.runner import RunnerOptions, WorkloadRunner
from repro.trace.generator import GeneratorConfig
from repro.trace.store import InvocationStore
from repro.trace.stream import DEFAULT_CHUNK_APPS, iter_chunk_columns

__all__ = ["simulate_streamed"]


def simulate_streamed(
    config: GeneratorConfig,
    factories: Sequence,
    *,
    options: RunnerOptions | None = None,
    chunk_apps: int = DEFAULT_CHUNK_APPS,
    gen_workers: int = 1,
    max_pending_chunks: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> dict[str, AggregateResult]:
    """Generate a workload and simulate it in one streaming pass.

    Args:
        config: Generator parameters (``rng_scheme="v2"`` required for
            ``gen_workers > 1``).
        factories: Policy factories, as accepted by
            :meth:`~repro.simulation.runner.WorkloadRunner.run_policies`.
        options: Engine options applied to every chunk (any execution
            route: serial, vectorized, banked, parallel, auto).
        chunk_apps: Applications generated and simulated per chunk — the
            streaming memory high-water mark.
        gen_workers: Parallel generation worker processes.
        max_pending_chunks: Generation read-ahead window (backpressure
            bound); defaults to ``gen_workers + 2``.
        progress: Optional ``(apps_done, num_apps)`` callback per chunk.

    Returns:
        Results keyed by policy name, equal to running the same factories
        over the full on-disk store of the same config.
    """
    per_policy: dict[str, list[AppSimResult]] = {}
    apps_done = 0
    for chunk in iter_chunk_columns(
        config,
        chunk_apps=chunk_apps,
        workers=gen_workers,
        max_pending_chunks=max_pending_chunks,
    ):
        store = InvocationStore.from_app_columns(
            chunk.app_functions,
            chunk.app_times,
            chunk.app_positions,
            duration_minutes=config.duration_minutes,
        )
        runner = WorkloadRunner(store, options)
        for name, result in runner.run_policies(factories).items():
            per_policy.setdefault(name, []).extend(result.app_results)
        apps_done += chunk.num_apps
        if progress is not None:
            progress(apps_done, config.num_apps)
    return {
        name: AggregateResult(policy_name=name, app_results=tuple(rows))
        for name, rows in per_policy.items()
    }
