"""Shared-state sweep engine: evaluate whole policy families in one pass.

The paper's headline results (Figures 14-19) are parameter sweeps, and a
sweep's configurations share almost all of their work:

* every **constant-keep-alive** policy (the fixed grid of Figure 14 plus
  the no-unloading bound) sees the same per-application idle gaps — only
  the window length ``K`` changes.  :func:`_evaluate_constant_family`
  resolves the flat timestamp columns once and broadcasts the whole
  keep-alive grid against them, reproducing
  :func:`~repro.simulation.engine.simulate_constant_decision_app` bit for
  bit per configuration.
* every **hybrid histogram** policy with one histogram geometry (range
  and bin width) shares its trace-derived state: histogram contents, the
  bin-count CV trajectory, and the idle-time (ARIMA) forecasts depend
  only on the trace, never on the cutoff/pre-warming/CV knobs — the
  knobs only select *which decision* is made from that state.
  :func:`_record_hybrid_family` therefore steps the workload through one
  :class:`~repro.core.histogram_bank.HistogramBank` (the same
  longest-first lockstep prefix protocol as the banked engine, with the
  same scalar drain for the few longest applications) and records, per
  invocation, the CV and the percentile bin of every distinct cutoff
  percentile any configuration uses.  Each configuration is then
  evaluated as pure decision *masks* over those recordings — flat
  vectorized passes with no per-step loop — and ARIMA forecasts are
  computed lazily, once per (application, invocation), and reused by
  every configuration that triggers them (:class:`_ArimaForecastMemo`).

Because the recorded quantities are bit-identical to what each
configuration's own banked (or scalar) run would have computed — the
bank-equivalence suite locks the shared machinery down — the sweep
engine's per-configuration results match independent per-configuration
runs exactly on cold-start counts and within 1e-9 on wasted memory
(``tests/simulation/test_sweep_equivalence.py``).

:class:`SweepEngine` is the routing layer: it groups a factory list by
:attr:`~repro.policies.registry.PolicyFactory.sweep_key`, runs each
shareable family through the matching evaluator (sharding applications
across a ``fork`` worker pool under ``execution="parallel"``), and falls
back to :class:`~repro.simulation.engine.SimulationEngine` per policy
for unshareable factories and singleton groups.
:meth:`~repro.simulation.runner.WorkloadRunner.run_policies` — and
therefore every ``sweep_*`` function and experiment driver — routes
through it; the ``sweep`` field of
:class:`~repro.simulation.engine.RunnerOptions` selects the behaviour
(``auto`` / ``family`` / ``per-policy``).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.forecaster import forecast_idle_times
from repro.core.histogram_bank import HistogramBank
from repro.core.windows import PolicyDecision
from repro.policies.registry import (
    FAMILY_CONSTANT_KEEPALIVE,
    FAMILY_HYBRID_HISTOGRAM,
    PolicyFactory,
)
from repro.simulation.coldstart import DEFAULT_SCALAR_DRAIN_THRESHOLD
from repro.core.pool import fork_pool_map
from repro.simulation.engine import (
    SimulationEngine,
    _AppWorkItem,
)
from repro.simulation.metrics import AggregateResult, AppSimResult, merge_results

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.coldstart import ColdStartSimulator

__all__ = [
    "FactoryGroup",
    "SweepEngine",
    "check_unique_policy_names",
    "group_factories",
]

#: Zero-count mode counters reported for hybrid-family applications with
#: no invocations, matching what a fresh bank row reports.
_EMPTY_HYBRID_MODES = {"histogram": 0, "standard": 0, "arima": 0}


def check_unique_policy_names(factories: Sequence[PolicyFactory]) -> None:
    """Reject factory lists whose names collide.

    Results are keyed by factory name; duplicate names used to overwrite
    each other silently, losing all but the last configuration's results.

    Raises:
        ValueError: Naming the colliding factories and the remedy
            (:meth:`~repro.policies.registry.PolicyFactory.renamed`).
    """
    seen: set[str] = set()
    duplicates: list[str] = []
    for factory in factories:
        if factory.name in seen and factory.name not in duplicates:
            duplicates.append(factory.name)
        seen.add(factory.name)
    if duplicates:
        raise ValueError(
            f"duplicate policy name(s) {duplicates}: results are keyed by "
            "name, so duplicates would silently overwrite each other; give "
            "each configuration a distinct label (PolicyFactory.renamed)"
        )


@dataclass(frozen=True)
class FactoryGroup:
    """A maximal run of factories sharing one sweep key.

    ``key`` is ``None`` for unshareable factories (each forms its own
    group); otherwise every member shares the
    :attr:`~repro.policies.registry.PolicyFactory.sweep_key`.
    """

    key: tuple | None
    factories: tuple[PolicyFactory, ...]


def group_factories(
    factories: Sequence[PolicyFactory], *, enabled: bool = True
) -> list[FactoryGroup]:
    """Group a factory list into shareable families.

    Factories with equal (non-``None``) sweep keys are merged into one
    group, preserving first-appearance order; unshareable factories become
    singleton groups in place.  With ``enabled=False`` every factory is a
    singleton (the per-policy routing).
    """
    groups: list[FactoryGroup] = []
    members: dict[tuple, list[PolicyFactory]] = {}
    ordered_keys: list[tuple | None] = []
    singletons: dict[int, PolicyFactory] = {}
    for position, factory in enumerate(factories):
        key = factory.sweep_key if enabled else None
        if key is None:
            ordered_keys.append(None)
            singletons[len(ordered_keys) - 1] = factory
            continue
        if key not in members:
            members[key] = []
            ordered_keys.append(key)
        members[key].append(factory)
    emitted: set[tuple] = set()
    for position, key in enumerate(ordered_keys):
        if key is None:
            groups.append(FactoryGroup(None, (singletons[position],)))
        elif key not in emitted:
            emitted.add(key)
            groups.append(FactoryGroup(key, tuple(members[key])))
    return groups


class SweepEngine:
    """Routes multi-policy runs through shared-state family evaluators.

    Args:
        engine: The single-policy engine whose workload, options, and
            simulator conventions the sweep shares.  Unshareable factories
            and singleton groups are delegated straight to it.
    """

    def __init__(self, engine: SimulationEngine) -> None:
        self._engine = engine
        self.options = engine.options
        self._simulator = engine.simulator

    # ------------------------------------------------------------------ #
    def run_policies(
        self,
        factories: Sequence[PolicyFactory],
        *,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> dict[str, AggregateResult]:
        """Evaluate several policies, sharing state within policy families.

        Returns results keyed by factory name, in input order.

        Raises:
            ValueError: When two factories share a name (results would
                silently overwrite each other).
        """
        factories = list(factories)
        check_unique_policy_names(factories)
        results: dict[str, AggregateResult] = {}
        for group in group_factories(factories, enabled=self.family_sharing_enabled()):
            if group.key is None or len(group.factories) < 2:
                for factory in group.factories:
                    per_policy_progress = None
                    if progress is not None:

                        def per_policy_progress(done, total, name=factory.name):
                            progress(name, done, total)

                    results[factory.name] = self._engine.run_policy(
                        factory, progress=per_policy_progress
                    )
                continue
            for name, app_results in self._run_family(group).items():
                results[name] = merge_results(name, app_results)
                if progress is not None:
                    progress(name, len(app_results), len(app_results))
        return {factory.name: results[factory.name] for factory in factories}

    def family_sharing_enabled(self) -> bool:
        """Whether shareable groups are evaluated through family passes.

        ``sweep="auto"`` shares under the ``auto`` and ``parallel``
        execution modes; an explicit single-engine request (``serial``,
        ``vectorized``, ``banked``) keeps the per-policy routing so those
        modes stay exact references.  ``"family"`` / ``"per-policy"``
        force the decision either way.
        """
        if self.options.sweep == "family":
            return True
        if self.options.sweep == "per-policy":
            return False
        return self.options.execution in ("auto", "parallel")

    # ------------------------------------------------------------------ #
    def _run_family(self, group: FactoryGroup) -> dict[str, list[AppSimResult]]:
        """Evaluate one shareable family, sharding when running parallel.

        Honours ``options.max_resident_bytes`` exactly like the
        single-policy engine: the in-process evaluation walks the store in
        budgeted application chunks (releasing mapped pages between
        chunks), and each parallel shard stays within the budget.  Chunk
        boundaries cannot change results — every recorded quantity is a
        pure function of one application's own timestamps.
        """
        engine = self._engine
        eligible = engine.eligible_app_count()
        workers = self._resolve_workers(eligible)
        if (
            self.options.execution == "parallel"
            and workers > 1
            and eligible > 1
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            return self._run_family_sharded(group, workers)
        bounds = engine.app_chunk_bounds()
        if len(bounds) <= 1:
            return self._evaluate_family_items(group, engine.work_items())
        merged: dict[str, list[AppSimResult]] = {
            factory.name: [] for factory in group.factories
        }
        for start, stop in bounds:
            chunk = self._evaluate_family_items(
                group, engine.work_items_range(start, stop)
            )
            for name, app_results in chunk.items():
                merged[name].extend(app_results)
            engine.release_mapped_pages()
        return merged

    def _resolve_workers(self, num_items: int) -> int:
        workers = self.options.workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(int(workers), max(num_items, 1)))

    def _evaluate_family_items(
        self, group: FactoryGroup, items: Sequence[_AppWorkItem]
    ) -> dict[str, list[AppSimResult]]:
        """Evaluate one family over a set of work items, in process."""
        assert group.key is not None
        if group.key[0] == FAMILY_CONSTANT_KEEPALIVE:
            return _evaluate_constant_family(group.factories, items, self._simulator)
        if group.key[0] == FAMILY_HYBRID_HISTOGRAM:
            return _evaluate_hybrid_family(group.factories, items, self._simulator)
        raise ValueError(f"unknown policy family {group.key[0]!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def _run_family_sharded(
        self,
        group: FactoryGroup,
        workers: int,
    ) -> dict[str, list[AppSimResult]]:
        """Shard the family evaluation across a ``fork`` worker pool.

        Applications are independent (each row's recordings and decisions
        are pure functions of its own timestamps), so evaluating a family
        over contiguous application ranges and concatenating per-config
        results in range order reproduces the whole-workload evaluation
        exactly, independent of the worker count.  Shards follow the
        engine's parallel geometry (:meth:`SimulationEngine.shard_ranges`):
        balanced by invocation count, split to ``max_resident_bytes``, and
        resolved in each forked worker against a re-opened memory-mapped
        store handle rather than the parent's columns.
        """
        engine = self._engine
        ranges = engine.shard_ranges(workers)

        def run_shard(shard_id: int) -> dict[str, list[AppSimResult]]:
            start, stop = ranges[shard_id]
            store = engine.worker_store()
            result = self._evaluate_family_items(
                group, engine.work_items_range(start, stop, store=store)
            )
            if self.options.max_resident_bytes is not None:
                store.release_mapped_pages()
            return result

        # The engine's shared fork pool: the task closure (carrying the
        # group's factories, which hold unpicklable closures) travels by
        # fork, and the results come back ordered by shard index.
        ordered = fork_pool_map(run_shard, len(ranges), workers)
        merged: dict[str, list[AppSimResult]] = {
            factory.name: [] for factory in group.factories
        }
        for shard_results in ordered:
            assert shard_results is not None
            for name, app_results in shard_results.items():
                merged[name].extend(app_results)
        return merged


# --------------------------------------------------------------------------- #
# Constant-keep-alive family (Figure 14): closed form over shared gaps
# --------------------------------------------------------------------------- #
def _evaluate_constant_family(
    factories: Sequence[PolicyFactory],
    items: Sequence[_AppWorkItem],
    simulator: "ColdStartSimulator",
) -> dict[str, list[AppSimResult]]:
    """Evaluate the whole keep-alive grid against per-app gaps computed once.

    The flat timestamp column, its per-invocation start/arrival views, and
    the validation pass are shared by every configuration; each ``K`` then
    costs a handful of flat array operations.  All per-term arithmetic —
    including the app-contiguous slices fed to ``np.sum`` — is identical
    to :func:`~repro.simulation.engine.simulate_constant_decision_app`, so
    each configuration's results are bit-for-bit what its own vectorized
    run produces.
    """
    horizon = simulator.horizon_minutes
    times_list = [simulator.validate_times(item.times) for item in items]
    counts = np.array([times.size for times in times_list], dtype=np.int64)
    flat = (
        np.concatenate(times_list) if times_list else np.zeros(0, dtype=np.float64)
    )
    offsets = np.zeros(len(items), dtype=np.int64)
    if len(items):
        np.cumsum(counts[:-1], out=offsets[1:])
    starts = flat[:-1]
    arrivals = flat[1:]

    results: dict[str, list[AppSimResult]] = {}
    for factory in factories:
        keepalive = float(factory.family_config)
        window_end = starts + keepalive
        cold_gap = arrivals > window_end
        effective_end = np.minimum(np.minimum(window_end, arrivals), horizon)
        waste_terms = np.maximum(effective_end - starts, 0.0)
        app_results: list[AppSimResult] = []
        for index, item in enumerate(items):
            n = int(counts[index])
            if n == 0:
                app_results.append(
                    AppSimResult(
                        app_id=item.app_id,
                        invocations=0,
                        cold_starts=0,
                        wasted_memory_minutes=0.0,
                        memory_mb=item.memory_mb,
                    )
                )
                continue
            o = int(offsets[index])
            # Gap terms live at flat positions [o, o + n - 1); the entry at
            # o + n - 1 pairs this app's last invocation with the next
            # app's first and is never read.
            cold_starts = int(np.count_nonzero(cold_gap[o : o + n - 1]))
            if simulator.first_invocation_cold:
                cold_starts += 1
            wasted = float(np.sum(waste_terms[o : o + n - 1]))
            if simulator.count_tail_waste:
                last = flat[o + n - 1]
                tail_end = min(last + keepalive, horizon)
                if tail_end > last:
                    wasted += tail_end - float(last)
            app_results.append(
                AppSimResult(
                    app_id=item.app_id,
                    invocations=n,
                    cold_starts=cold_starts,
                    wasted_memory_minutes=wasted,
                    memory_mb=item.memory_mb,
                )
            )
        results[factory.name] = app_results
    return results


# --------------------------------------------------------------------------- #
# Hybrid histogram family (Figures 15-19): one recording pass, K config scans
# --------------------------------------------------------------------------- #
@dataclass
class _HybridFamilyRecording:
    """Per-invocation shared state of one hybrid family, in CSR layout.

    Applications are ordered longest-first (the banked stepping order);
    application ``r`` occupies flat positions ``[offsets[r],
    offsets[r] + counts[r])``, one per invocation in time order.  Every
    recorded value is exactly what a scalar (or banked) hybrid policy of
    this geometry observes at that invocation's decision point.
    """

    order: np.ndarray  #: sorted row -> work-item index
    counts: np.ndarray  #: invocations per sorted row
    offsets: np.ndarray  #: CSR start per sorted row
    times: np.ndarray  #: flat timestamps, sorted-app order
    cv: np.ndarray  #: bin-count CV at each decision point
    bins: dict[float, np.ndarray]  #: percentile -> bin index per invocation
    total: np.ndarray  #: idle times observed at each decision point
    oob: np.ndarray  #: ... of which out of the histogram range
    range_minutes: float
    bin_width_minutes: float


def _record_hybrid_family(
    items: Sequence[_AppWorkItem],
    simulator: "ColdStartSimulator",
    range_minutes: float,
    bin_width_minutes: float,
    percentiles: Sequence[float],
    drain_threshold: int = DEFAULT_SCALAR_DRAIN_THRESHOLD,
) -> _HybridFamilyRecording:
    """One shared pass over the workload recording per-invocation state.

    Mirrors the banked engine's grouped stepping: applications are
    assigned rows longest-first and stepped in lockstep prefixes through
    one :class:`HistogramBank`; once ``drain_threshold`` or fewer rows
    remain active, each survivor is cloned into a scalar
    :class:`~repro.core.histogram.IdleTimeHistogram`
    (:meth:`HistogramBank.extract_row` preserves the exact Welford state)
    and recorded to the end through the scalar code path — both paths
    produce bit-identical CV and percentile-bin trajectories, which the
    bank-equivalence suite locks down.
    """
    num = len(items)
    times_list = [simulator.validate_times(item.times) for item in items]
    counts = np.array([times.size for times in times_list], dtype=np.int64)
    order = np.argsort(-counts, kind="stable")
    counts_sorted = counts[order]
    flat = (
        np.concatenate([times_list[int(i)] for i in order])
        if num
        else np.zeros(0, dtype=np.float64)
    )
    offsets = np.zeros(num, dtype=np.int64)
    if num:
        np.cumsum(counts_sorted[:-1], out=offsets[1:])
    max_count = int(counts_sorted[0]) if num else 0
    occupancy = np.bincount(counts_sorted, minlength=max_count + 1)
    active_per_step = num - np.cumsum(occupancy)[:max_count]

    total_invocations = int(counts.sum())
    cv = np.zeros(total_invocations, dtype=np.float64)
    percentiles = list(percentiles)
    bins = {q: np.zeros(total_invocations, dtype=np.int64) for q in percentiles}
    qs = np.asarray(percentiles, dtype=np.float64)
    qs_fraction = qs / 100.0

    bank = HistogramBank(
        num, range_minutes=range_minutes, bin_width_minutes=bin_width_minutes
    )
    num_bins = bank.num_bins
    for step in range(max_count):
        active = int(active_per_step[step])
        if active <= drain_threshold:
            # Scalar drain: record the few longest applications to the end
            # through scalar histograms resumed from their bank rows.
            for row in range(active):
                o = int(offsets[row])
                histogram = bank.extract_row(row)
                for k in range(step, int(counts_sorted[row])):
                    if k > 0:
                        histogram.observe(float(flat[o + k] - flat[o + k - 1]))
                    position = o + k
                    cv[position] = histogram.bin_count_cv
                    in_bounds = histogram.in_bounds_count
                    if in_bounds:
                        # The scalar percentile() bin search, batched over
                        # every distinct percentile of the family.
                        cumulative = np.cumsum(histogram.counts)
                        targets = np.maximum(qs_fraction * in_bounds, 1e-12)
                        indices = np.minimum(
                            np.searchsorted(cumulative, targets, side="left"),
                            num_bins - 1,
                        )
                        for qi, q in enumerate(percentiles):
                            bins[q][position] = indices[qi]
            break
        positions = offsets[:active] + step
        if step > 0:
            bank.observe_prefix(flat[positions] - flat[positions - 1])
        cv[positions] = bank.bin_count_cv_prefix(active)
        in_bounds = bank.in_bounds_count[:active]
        bin_matrix = bank.percentile_bins_prefix(active, qs, in_bounds)
        for qi, q in enumerate(percentiles):
            bins[q][positions] = bin_matrix[qi]

    # Observation counters are pure gap counts; compute them flat instead
    # of recording them.  total at decision k is k (one idle time per
    # preceding gap); oob counts the gaps at or beyond the range, with
    # exactly the ``idle < range`` comparison the histogram applies.
    total = (
        np.arange(total_invocations, dtype=np.int64)
        - np.repeat(offsets, counts_sorted)
        if total_invocations
        else np.zeros(0, dtype=np.int64)
    )
    oob = np.zeros(total_invocations, dtype=np.int64)
    if total_invocations:
        gaps = np.zeros(total_invocations, dtype=np.float64)
        gaps[1:] = flat[1:] - flat[:-1]
        gaps[offsets[counts_sorted > 0]] = 0.0
        oob_flag = (gaps >= range_minutes).astype(np.int64)
        cumulative = np.cumsum(oob_flag)
        bases = np.repeat(cumulative[offsets[counts_sorted > 0]], counts_sorted[counts_sorted > 0])
        oob = cumulative - bases
    return _HybridFamilyRecording(
        order=order,
        counts=counts_sorted,
        offsets=offsets,
        times=flat,
        cv=cv,
        bins=bins,
        total=total,
        oob=oob,
        range_minutes=range_minutes,
        bin_width_minutes=bin_width_minutes,
    )


class _ArimaForecastMemo:
    """Idle-time forecasts shared across a family's configurations.

    The ARIMA branch is a pure function of the retained idle-time history,
    which depends only on the trace (and the history capacity) — never on
    the configuration's margins or thresholds.  Each (invocation, history
    capacity) pair is therefore fitted at most once per sweep, and every
    configuration that triggers the branch at that invocation reuses the
    forecast, applying only its own margin arithmetic.
    """

    def __init__(self, recording: _HybridFamilyRecording) -> None:
        self._recording = recording
        self._predictions: dict[tuple[int, int], float] = {}

    def predictions(self, positions: np.ndarray, max_history: int) -> np.ndarray:
        """Forecast idle times for the given flat invocation positions.

        Cache misses are collected and fitted as stacked batches (one
        stacked grid search per distinct history length) instead of one
        scalar model per position; the batched fits are bit-identical to
        the scalar forecaster, so memoized values are interchangeable
        between the two paths.
        """
        out = np.empty(positions.size, dtype=np.float64)
        missing: list[int] = []
        histories: list[np.ndarray] = []
        for i, position in enumerate(positions):
            key = (int(position), max_history)
            cached = self._predictions.get(key)
            if cached is not None:
                out[i] = cached
            else:
                missing.append(i)
                histories.append(self._history(int(position), max_history))
        if missing:
            values = forecast_idle_times(histories)
            for i, value in zip(missing, values):
                prediction = float(value)
                out[i] = prediction
                self._predictions[(int(positions[i]), max_history)] = prediction
        return out

    def fitted_count(self) -> int:
        """Number of distinct forecasts computed so far (for tests)."""
        return len(self._predictions)

    def _history(self, position: int, max_history: int) -> np.ndarray:
        """Idle-time history backing the forecast at one flat position.

        The forecaster's history at decision step k is the last
        min(k, capacity) idle gaps, oldest first — reconstructed
        directly from the timestamps, exactly the values the banked
        ring (or the scalar deque) holds at that point.
        """
        recording = self._recording
        row = int(np.searchsorted(recording.offsets, position, side="right") - 1)
        o = int(recording.offsets[row])
        step = position - o
        start = max(1, step - max_history + 1)
        return (
            recording.times[o + start : o + step + 1]
            - recording.times[o + start - 1 : o + step]
        )

    def _prediction(self, position: int, max_history: int) -> float:
        """One position's forecast (cache-filling scalar-shaped lookup)."""
        key = (position, max_history)
        cached = self._predictions.get(key)
        if cached is not None:
            return cached
        value = float(forecast_idle_times([self._history(position, max_history)])[0])
        self._predictions[key] = value
        return value


def _evaluate_hybrid_family(
    factories: Sequence[PolicyFactory],
    items: Sequence[_AppWorkItem],
    simulator: "ColdStartSimulator",
) -> dict[str, list[AppSimResult]]:
    """Evaluate every configuration of one hybrid family from one recording."""
    configs = [factory.family_config for factory in factories]
    reference = configs[0]
    assert all(
        config.histogram_range_minutes == reference.histogram_range_minutes
        and config.bin_width_minutes == reference.bin_width_minutes
        for config in configs
    ), "hybrid family members must share the histogram geometry"
    percentiles = sorted(
        {config.head_percentile for config in configs}
        | {config.tail_percentile for config in configs}
    )
    recording = _record_hybrid_family(
        items,
        simulator,
        reference.histogram_range_minutes,
        reference.bin_width_minutes,
        percentiles,
    )
    memo = _ArimaForecastMemo(recording)
    return {
        factory.name: _evaluate_hybrid_config(recording, config, memo, items, simulator)
        for factory, config in zip(factories, configs)
    }


def _evaluate_hybrid_config(
    recording: _HybridFamilyRecording,
    config,
    memo: _ArimaForecastMemo,
    items: Sequence[_AppWorkItem],
    simulator: "ColdStartSimulator",
) -> list[AppSimResult]:
    """One configuration's decisions, cold starts, and waste from recordings.

    Every float operation mirrors :class:`~repro.policies.bank.
    HybridPolicyBank.on_invocations` (masks, margin arithmetic, the
    no-pre-warming transform) and the banked stepping loop's cold/waste
    terms, evaluated flat over all invocations at once instead of one
    lockstep step at a time.  Decisions never depend on cold/warm
    outcomes, so the flat evaluation is exact.
    """
    total = recording.total
    oob = recording.oob
    in_bounds = total - oob
    if config.enable_arima:
        oob_fraction = np.where(total > 0, oob / np.maximum(total, 1), 0.0)
        mask_arima = (total >= config.oob_min_observations) & (
            oob_fraction > config.oob_fraction_threshold
        )
    else:
        mask_arima = None
    mask_histogram = (in_bounds >= config.min_observations) & (
        recording.cv >= config.cv_threshold
    )
    if mask_arima is not None:
        mask_histogram &= ~mask_arima
        mask_standard = ~(mask_arima | mask_histogram)
    else:
        mask_standard = ~mask_histogram

    bin_width = recording.bin_width_minutes
    head = recording.bins[config.head_percentile] * bin_width
    tail = (recording.bins[config.tail_percentile] + 1) * bin_width
    row_prewarm = head * (1.0 - config.prewarm_margin)
    keepalive_end = tail * (1.0 + config.keepalive_margin)
    row_prewarm = np.where(row_prewarm < bin_width, 0.0, row_prewarm)
    row_keepalive = np.maximum(keepalive_end - row_prewarm, bin_width)
    prewarm = np.where(mask_histogram, row_prewarm, 0.0)
    keepalive = np.where(
        mask_histogram, row_keepalive, config.histogram_range_minutes
    )

    if mask_arima is not None and mask_arima.any():
        positions = np.nonzero(mask_arima)[0]
        predictions = memo.predictions(positions, config.arima_max_history)
        prewarm[positions] = np.maximum(
            predictions * (1.0 - config.arima_margin), 0.0
        )
        keepalive[positions] = np.maximum(
            2.0 * config.arima_margin * predictions, bin_width
        )

    if not config.enable_prewarming:
        # "Hybrid No PW" (Figure 17): keep the tail-derived keep-alive but
        # never unload right after the execution.
        unloads = prewarm > 0
        keepalive = np.where(unloads, prewarm + keepalive, keepalive)
        prewarm = np.where(unloads, 0.0, prewarm)

    # Cold/warm outcomes and idle-loaded waste from consecutive decisions,
    # flat: position i's decision governs the gap to position i + 1 of the
    # same application (the entry pairing an application's last invocation
    # with the next application's first is masked off below).
    times = recording.times
    horizon = simulator.horizon_minutes
    num_invocations = times.size
    counts = recording.counts
    offsets = recording.offsets
    populated = counts > 0
    first_positions = offsets[populated]
    cold = np.zeros(num_invocations, dtype=bool)
    terms = np.zeros(num_invocations, dtype=np.float64)
    if num_invocations:
        load_start = times + prewarm
        load_end = load_start + keepalive
        warm = (load_start[:-1] <= times[1:]) & (times[1:] <= load_end[:-1])
        cold[1:] = ~warm
        cold[first_positions] = simulator.first_invocation_cold
        effective_end = np.minimum(np.minimum(load_end[:-1], times[1:]), horizon)
        terms[1:] = np.maximum(effective_end - load_start[:-1], 0.0)
        terms[first_positions] = 0.0

    num_rows = len(items)
    populated_rows = int(np.count_nonzero(populated))
    if populated_rows:
        starts = offsets[:populated_rows]
        cold_counts = np.add.reduceat(cold.astype(np.int64), starts)
        wasted = np.add.reduceat(terms, starts)
        histogram_counts = np.add.reduceat(mask_histogram.astype(np.int64), starts)
        standard_counts = np.add.reduceat(mask_standard.astype(np.int64), starts)
        if mask_arima is not None:
            arima_counts = np.add.reduceat(mask_arima.astype(np.int64), starts)
        else:
            arima_counts = np.zeros(populated_rows, dtype=np.int64)

    results: list[AppSimResult | None] = [None] * num_rows
    for row in range(num_rows):
        item = items[int(recording.order[row])]
        n = int(counts[row])
        if n == 0:
            results[int(recording.order[row])] = AppSimResult(
                app_id=item.app_id,
                invocations=0,
                cold_starts=0,
                wasted_memory_minutes=0.0,
                memory_mb=item.memory_mb,
                mode_counts=dict(_EMPTY_HYBRID_MODES),
            )
            continue
        last = int(offsets[row]) + n - 1
        wasted_minutes = float(wasted[row])
        if simulator.count_tail_waste:
            wasted_minutes += simulator.waste_between(
                float(times[last]),
                PolicyDecision(
                    prewarm_minutes=float(prewarm[last]),
                    keepalive_minutes=float(keepalive[last]),
                ),
                horizon,
            )
        results[int(recording.order[row])] = AppSimResult(
            app_id=item.app_id,
            invocations=n,
            cold_starts=int(cold_counts[row]),
            wasted_memory_minutes=wasted_minutes,
            memory_mb=item.memory_mb,
            mode_counts={
                "histogram": int(histogram_counts[row]),
                "standard": int(standard_counts[row]),
                "arima": int(arima_counts[row]),
            },
            oob_idle_times=int(oob[last]),
        )
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
