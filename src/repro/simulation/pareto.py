"""Pareto-frontier analysis of the cold-start vs. memory trade-off.

Figure 15 (and Figure 18, right) plot every policy configuration as a
point in the plane (3rd-quartile application cold-start percentage,
normalized wasted memory time) and compare the *Pareto frontiers* traced
by the fixed keep-alive family and the hybrid-policy family.  This module
extracts those frontiers and quantifies how much one family dominates the
other (the "~2.5× fewer cold starts at equal memory" and "~50% less memory
at equal cold starts" headline numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.simulation.metrics import AggregateResult


@dataclass(frozen=True)
class TradeOffPoint:
    """One policy configuration in the cold-start/memory plane."""

    policy: str
    cold_start_percentage: float
    normalized_wasted_memory: float

    def dominates(self, other: "TradeOffPoint") -> bool:
        """True when this point is at least as good on both axes and better on one."""
        not_worse = (
            self.cold_start_percentage <= other.cold_start_percentage
            and self.normalized_wasted_memory <= other.normalized_wasted_memory
        )
        strictly_better = (
            self.cold_start_percentage < other.cold_start_percentage
            or self.normalized_wasted_memory < other.normalized_wasted_memory
        )
        return not_worse and strictly_better


def trade_off_points(
    results: Mapping[str, AggregateResult], baseline: AggregateResult
) -> list[TradeOffPoint]:
    """Build trade-off points from aggregate results, normalizing to a baseline."""
    points = []
    for name, result in results.items():
        points.append(
            TradeOffPoint(
                policy=name,
                cold_start_percentage=result.third_quartile_cold_start_percentage,
                normalized_wasted_memory=result.normalized_wasted_memory(baseline),
            )
        )
    return points


def pareto_frontier(points: Iterable[TradeOffPoint]) -> list[TradeOffPoint]:
    """Non-dominated subset, sorted by ascending cold-start percentage."""
    point_list = list(points)
    frontier = [
        candidate
        for candidate in point_list
        if not any(other.dominates(candidate) for other in point_list)
    ]
    return sorted(frontier, key=lambda p: (p.cold_start_percentage, p.normalized_wasted_memory))


def interpolate_memory_at_cold_start(
    frontier: Sequence[TradeOffPoint], cold_start_percentage: float
) -> float:
    """Wasted memory of a frontier at a given cold-start level (linear interp)."""
    if not frontier:
        raise ValueError("frontier is empty")
    xs = np.asarray([p.cold_start_percentage for p in frontier], dtype=float)
    ys = np.asarray([p.normalized_wasted_memory for p in frontier], dtype=float)
    order = np.argsort(xs)
    return float(np.interp(cold_start_percentage, xs[order], ys[order]))


def interpolate_cold_start_at_memory(
    frontier: Sequence[TradeOffPoint], normalized_memory: float
) -> float:
    """Cold-start level of a frontier at a given memory budget (linear interp)."""
    if not frontier:
        raise ValueError("frontier is empty")
    xs = np.asarray([p.normalized_wasted_memory for p in frontier], dtype=float)
    ys = np.asarray([p.cold_start_percentage for p in frontier], dtype=float)
    order = np.argsort(xs)
    return float(np.interp(normalized_memory, xs[order], ys[order]))


@dataclass(frozen=True)
class FrontierComparison:
    """How much one policy family improves on another (Figure 15 headline)."""

    cold_start_ratio_at_equal_memory: float
    memory_ratio_at_equal_cold_start: float

    def describe(self) -> str:
        return (
            f"at equal memory the baseline frontier has "
            f"{self.cold_start_ratio_at_equal_memory:.2f}x the cold starts; "
            f"at equal cold starts it spends "
            f"{self.memory_ratio_at_equal_cold_start:.2f}x the memory"
        )


def compare_frontiers(
    better: Sequence[TradeOffPoint],
    baseline: Sequence[TradeOffPoint],
    *,
    reference_point: TradeOffPoint | None = None,
) -> FrontierComparison:
    """Quantify the gap between two frontiers.

    Args:
        better: The frontier expected to dominate (hybrid policies).
        baseline: The frontier being compared against (fixed policies).
        reference_point: The point at which the comparison is anchored;
            defaults to the last point of ``better`` (the largest-range
            hybrid configuration, which is how the paper frames it:
            "the 10-minute fixed policy has ~2.5× more cold starts at the
            same memory as the 4-hour-range hybrid").
    """
    better_frontier = pareto_frontier(better)
    baseline_frontier = pareto_frontier(baseline)
    if not better_frontier or not baseline_frontier:
        raise ValueError("both frontiers must be non-empty")
    anchor = reference_point or better_frontier[0]
    baseline_cold_at_memory = interpolate_cold_start_at_memory(
        baseline_frontier, anchor.normalized_wasted_memory
    )
    baseline_memory_at_cold = interpolate_memory_at_cold_start(
        baseline_frontier, anchor.cold_start_percentage
    )
    cold_ratio = (
        baseline_cold_at_memory / anchor.cold_start_percentage
        if anchor.cold_start_percentage > 0
        else float("inf")
    )
    memory_ratio = (
        baseline_memory_at_cold / anchor.normalized_wasted_memory
        if anchor.normalized_wasted_memory > 0
        else float("inf")
    )
    return FrontierComparison(
        cold_start_ratio_at_equal_memory=cold_ratio,
        memory_ratio_at_equal_cold_start=memory_ratio,
    )
