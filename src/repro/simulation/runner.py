"""Run keep-alive policies over whole workloads.

The runner couples the execution engines of
:mod:`repro.simulation.engine` with a
:class:`~repro.policies.registry.PolicyFactory`: every application gets a
fresh policy instance (policies are stateful and per-application by
design) and the per-app results are aggregated into an
:class:`~repro.simulation.metrics.AggregateResult`.  The
``execution`` field of :class:`RunnerOptions` selects the engine
(``serial``, ``vectorized``, ``banked``, ``parallel``, or ``auto``);
for banked-capable policies (the hybrid histogram policy) the per-app
instances are replaced by one struct-of-arrays policy bank.
:class:`ParallelWorkloadRunner` is a convenience wrapper that pins the
parallel engine and a worker count; its shards use banks internally for
banked-capable policies.

Multi-policy runs (:meth:`WorkloadRunner.run_policies`, and therefore
every ``sweep_*`` function and experiment driver) route through the
shared-state sweep engine (:mod:`repro.simulation.sweep_engine`): policy
families declared via
:attr:`~repro.policies.registry.PolicyFactory.sweep_key` are evaluated
in one pass over the workload, with the per-policy engines as the
fallback for unshareable factories.  The ``sweep`` field of
:class:`RunnerOptions` controls the routing, and duplicate factory
names are rejected with a ``ValueError`` instead of silently
overwriting each other's results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.policies.registry import PolicyFactory
from repro.simulation.engine import RunnerOptions, SimulationEngine
from repro.simulation.metrics import AggregateResult
from repro.simulation.sweep_engine import SweepEngine, group_factories
from repro.trace.schema import Workload
from repro.trace.store import InvocationStore

__all__ = [
    "RunnerOptions",
    "WorkloadRunner",
    "ParallelWorkloadRunner",
    "PolicyComparison",
    "run_policy_over_workload",
]


class WorkloadRunner:
    """Evaluates policies over every application of a workload.

    Also accepts a bare :class:`~repro.trace.store.InvocationStore` — for
    example one streamed to disk by ``repro trace gen`` and re-opened
    memory-mapped — in which case per-application metadata (memory
    weights) is unavailable and every application weighs 1 MB.
    """

    def __init__(
        self,
        workload: Workload | InvocationStore,
        options: RunnerOptions | None = None,
    ) -> None:
        self.workload = workload
        self.options = options or RunnerOptions()
        self._engine = SimulationEngine(workload, self.options)
        self._sweep_engine = SweepEngine(self._engine)

    # ------------------------------------------------------------------ #
    def run_policy(
        self,
        factory: PolicyFactory,
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> AggregateResult:
        """Simulate one policy (fresh instance per application) over the workload.

        Args:
            factory: Policy factory; called once per application.
            progress: Optional callback ``(done, total)`` for long runs.
        """
        return self._engine.run_policy(factory, progress=progress)

    def run_policies(
        self,
        factories: Sequence[PolicyFactory],
        *,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> dict[str, AggregateResult]:
        """Simulate several policies and return results keyed by policy name.

        Routed through the shared-state sweep engine: factories declaring
        a common :attr:`~repro.policies.registry.PolicyFactory.sweep_key`
        are evaluated as one family in a single pass over the workload
        (subject to ``options.sweep``); everything else runs per policy
        through :meth:`run_policy`'s engine.

        Raises:
            ValueError: When two factories share a name — results are
                keyed by name, so duplicates would silently overwrite
                each other.
        """
        return self._sweep_engine.run_policies(factories, progress=progress)

    def sweep_groups(self, factories: Sequence[PolicyFactory]):
        """How :meth:`run_policies` would group these factories.

        Returns the :class:`~repro.simulation.sweep_engine.FactoryGroup`
        list the sweep engine would evaluate under this runner's options —
        shareable families merged, everything else as singletons.  Used by
        the ``repro sweep`` CLI to preview the grouping without running.
        """
        return group_factories(
            factories, enabled=self._sweep_engine.family_sharing_enabled()
        )

    # ------------------------------------------------------------------ #
    def compare(
        self,
        factories: Sequence[PolicyFactory],
        *,
        baseline_name: str | None = None,
    ) -> "PolicyComparison":
        """Run several policies and build a comparison table.

        Args:
            factories: Policies to evaluate.
            baseline_name: Name of the policy used to normalize wasted
                memory time; defaults to a 10-minute fixed policy if one is
                present, otherwise the first policy.
        """
        results = self.run_policies(factories)
        if baseline_name is None:
            baseline_name = next(
                (name for name in results if name == "fixed-10min"), next(iter(results))
            )
        if baseline_name not in results:
            raise ValueError(f"baseline policy {baseline_name!r} was not evaluated")
        return PolicyComparison(results=results, baseline_name=baseline_name)


class ParallelWorkloadRunner(WorkloadRunner):
    """A :class:`WorkloadRunner` pinned to the parallel sharded engine.

    Applications are sharded across a ``multiprocessing`` pool; results
    are reassembled in workload order, so every derived table —
    including :meth:`PolicyComparison.rows` — is byte-identical to a run
    with any other worker count (and, for policies without a vectorized
    fast path, to the serial engine).

    Args:
        workload: Workload to evaluate.
        options: Base options; the ``execution`` field is overridden.
        workers: Worker-pool size; ``None`` uses the machine's CPU count.
    """

    def __init__(
        self,
        workload: Workload | InvocationStore,
        options: RunnerOptions | None = None,
        *,
        workers: int | None = None,
    ) -> None:
        base = options or RunnerOptions()
        if workers is None:
            workers = base.workers
        super().__init__(workload, replace(base, execution="parallel", workers=workers))


@dataclass
class PolicyComparison:
    """Results of several policies over the same workload, with a baseline."""

    results: Mapping[str, AggregateResult]
    baseline_name: str

    @property
    def baseline(self) -> AggregateResult:
        return self.results[self.baseline_name]

    def rows(self) -> list[dict[str, float | str]]:
        """One row per policy: the numbers behind Figures 14–18."""
        baseline = self.baseline
        rows: list[dict[str, float | str]] = []
        for name, result in self.results.items():
            rows.append(
                {
                    "policy": name,
                    "third_quartile_app_cold_start_pct": (
                        result.third_quartile_cold_start_percentage
                    ),
                    "overall_cold_start_pct": result.overall_cold_start_percentage,
                    "normalized_wasted_memory_pct": result.normalized_wasted_memory(baseline),
                    "always_cold_fraction": result.always_cold_fraction,
                    "num_apps": result.num_apps,
                }
            )
        return rows

    def as_text_table(self) -> str:
        """Plain-text rendering of :meth:`rows` (used by the CLI and benches)."""
        rows = self.rows()
        header = (
            f"{'policy':<24} {'3Q cold start %':>16} {'overall cold %':>15} "
            f"{'norm. wasted mem %':>19} {'always-cold %':>14}"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['policy']:<24} "
                f"{row['third_quartile_app_cold_start_pct']:>16.2f} "
                f"{row['overall_cold_start_pct']:>15.2f} "
                f"{row['normalized_wasted_memory_pct']:>19.2f} "
                f"{100.0 * float(row['always_cold_fraction']):>14.2f}"
            )
        return "\n".join(lines)

    def mode_usage_rows(self) -> list[dict[str, float | int | str]]:
        """Decision-mode usage per policy, for policies that track modes.

        One row per policy whose per-app results carry
        :class:`~repro.core.hybrid.HybridPolicyStats`-style mode counters
        (histogram / standard / ARIMA decision counts) plus the fraction
        of observed idle times that fell beyond the histogram range.
        Identical for banked and scalar runs of the same policy, so the
        two execution routes can be compared at a glance.
        """
        rows: list[dict[str, float | int | str]] = []
        for name, result in self.results.items():
            usage = result.mode_usage()
            if not usage:
                continue
            row: dict[str, float | int | str] = {"policy": name}
            row.update(sorted(usage.items()))
            row["oob_idle_time_pct"] = 100.0 * result.oob_idle_time_fraction
            rows.append(row)
        return rows

    def mode_usage_table(self) -> str:
        """Plain-text rendering of :meth:`mode_usage_rows` ('' when empty)."""
        rows = self.mode_usage_rows()
        if not rows:
            return ""
        # Union of mode keys across all policies: different policy kinds
        # may track different mode sets.
        modes = sorted(
            {key for row in rows for key in row if key not in ("policy", "oob_idle_time_pct")}
        )
        header = f"{'policy':<24} " + " ".join(f"{mode:>12}" for mode in modes)
        header += f" {'OOB idle %':>12}"
        lines = ["decision-mode usage (hybrid policies):", header, "-" * len(header)]
        for row in rows:
            cells = " ".join(f"{row.get(mode, 0):>12}" for mode in modes)
            lines.append(
                f"{row['policy']:<24} {cells} {float(row['oob_idle_time_pct']):>12.2f}"
            )
        return "\n".join(lines)


def run_policy_over_workload(
    workload: Workload | InvocationStore,
    factory: PolicyFactory,
    *,
    options: RunnerOptions | None = None,
) -> AggregateResult:
    """Convenience wrapper: evaluate one policy over a workload."""
    return WorkloadRunner(workload, options).run_policy(factory)
