"""Metrics produced by the cold-start simulator.

The paper evaluates policies along two axes:

* the distribution of per-application **cold-start percentages** (the CDFs
  of Figures 14, 16, 17, 18 and 20), usually summarized by the
  **3rd-quartile (75th-percentile) application cold-start percentage**;
* the **wasted memory time** — the total time application images sit in
  memory without executing anything — normalized to the 10-minute fixed
  keep-alive baseline (Figures 15–18).

This module defines the per-application and aggregate result records and
the helpers that compute those summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class AppSimResult:
    """Outcome of simulating one policy over one application's trace."""

    app_id: str
    invocations: int
    cold_starts: int
    wasted_memory_minutes: float
    memory_mb: float = 1.0
    mode_counts: Mapping[str, int] = field(default_factory=dict)
    oob_idle_times: int = 0

    def __post_init__(self) -> None:
        if self.invocations < 0 or self.cold_starts < 0:
            raise ValueError("counts must be non-negative")
        if self.cold_starts > self.invocations:
            raise ValueError("cold starts cannot exceed invocations")
        if self.wasted_memory_minutes < 0:
            raise ValueError("wasted memory time must be non-negative")
        if self.oob_idle_times < 0:
            raise ValueError("out-of-bounds count must be non-negative")

    @property
    def idle_time_observations(self) -> int:
        """Number of idle times the policy observed (one per gap)."""
        return max(self.invocations - 1, 0)

    @property
    def warm_starts(self) -> int:
        return self.invocations - self.cold_starts

    @property
    def cold_start_percentage(self) -> float:
        """Percentage of this application's invocations that were cold."""
        if self.invocations == 0:
            return 0.0
        return 100.0 * self.cold_starts / self.invocations

    @property
    def always_cold(self) -> bool:
        """True when every invocation of the application was a cold start."""
        return self.invocations > 0 and self.cold_starts == self.invocations

    @property
    def wasted_memory_mb_minutes(self) -> float:
        """Memory-weighted waste (MB·minutes)."""
        return self.wasted_memory_minutes * self.memory_mb


@dataclass
class AggregateResult:
    """Aggregate of one policy's results over a whole workload."""

    policy_name: str
    app_results: tuple[AppSimResult, ...]

    @property
    def num_apps(self) -> int:
        return len(self.app_results)

    @property
    def total_invocations(self) -> int:
        return sum(result.invocations for result in self.app_results)

    @property
    def total_cold_starts(self) -> int:
        return sum(result.cold_starts for result in self.app_results)

    @property
    def overall_cold_start_percentage(self) -> float:
        """Cold-start percentage over all invocations (not per-app)."""
        total = self.total_invocations
        if total == 0:
            return 0.0
        return 100.0 * self.total_cold_starts / total

    @property
    def total_wasted_memory_minutes(self) -> float:
        return sum(result.wasted_memory_minutes for result in self.app_results)

    @property
    def total_wasted_memory_mb_minutes(self) -> float:
        return sum(result.wasted_memory_mb_minutes for result in self.app_results)

    def cold_start_percentages(self) -> np.ndarray:
        """Per-application cold-start percentages (the CDF raw data)."""
        return np.asarray(
            [result.cold_start_percentage for result in self.app_results], dtype=float
        )

    def app_cold_start_percentile(self, percentile: float) -> float:
        """Percentile of the per-app cold-start distribution.

        The paper reports the 75th percentile ("3rd-quartile app cold
        start"); lower percentiles are available for completeness.
        """
        values = self.cold_start_percentages()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, percentile))

    @property
    def third_quartile_cold_start_percentage(self) -> float:
        return self.app_cold_start_percentile(75.0)

    @property
    def always_cold_fraction(self) -> float:
        """Fraction of applications that experienced only cold starts (Fig. 19)."""
        if not self.app_results:
            return 0.0
        always = sum(1 for result in self.app_results if result.always_cold)
        return always / len(self.app_results)

    def always_cold_fraction_excluding_single(self) -> float:
        """Always-cold fraction excluding single-invocation applications.

        Applications with a single invocation in the trace can never avoid
        their one cold start; the paper reports the ARIMA benefit both with
        and without them.
        """
        eligible = [result for result in self.app_results if result.invocations > 1]
        if not eligible:
            return 0.0
        always = sum(1 for result in eligible if result.always_cold)
        return always / len(self.app_results)

    @property
    def single_invocation_fraction(self) -> float:
        """Fraction of applications invoked exactly once over the trace."""
        if not self.app_results:
            return 0.0
        singles = sum(1 for result in self.app_results if result.invocations == 1)
        return singles / len(self.app_results)

    def mode_usage(self) -> dict[str, int]:
        """Summed per-application decision-mode counters.

        For the hybrid policy these are the
        :class:`~repro.core.hybrid.HybridPolicyStats` histogram / standard
        / ARIMA decision counts; policies without mode tracking produce an
        empty dictionary.
        """
        usage: dict[str, int] = {}
        for result in self.app_results:
            for mode, count in result.mode_counts.items():
                usage[mode] = usage.get(mode, 0) + int(count)
        return usage

    @property
    def total_oob_idle_times(self) -> int:
        """Idle times that fell beyond the histogram range, workload-wide."""
        return sum(result.oob_idle_times for result in self.app_results)

    @property
    def total_idle_time_observations(self) -> int:
        """Idle times observed by the policy, workload-wide."""
        return sum(result.idle_time_observations for result in self.app_results)

    @property
    def oob_idle_time_fraction(self) -> float:
        """Fraction of observed idle times that were out of bounds."""
        observations = self.total_idle_time_observations
        if observations == 0:
            return 0.0
        return self.total_oob_idle_times / observations

    def normalized_wasted_memory(self, baseline: "AggregateResult") -> float:
        """Wasted memory time as a percentage of a baseline policy's.

        The paper normalizes to the 10-minute fixed keep-alive policy.
        """
        denominator = baseline.total_wasted_memory_minutes
        if denominator == 0:
            return 0.0 if self.total_wasted_memory_minutes == 0 else math.inf
        return 100.0 * self.total_wasted_memory_minutes / denominator

    def cold_start_cdf(self, grid: Sequence[float] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Empirical CDF of per-app cold-start percentages.

        Returns ``(x, F(x))`` where ``x`` spans 0..100 (percent).
        """
        values = np.sort(self.cold_start_percentages())
        if grid is None:
            grid_array = np.linspace(0.0, 100.0, 101)
        else:
            grid_array = np.asarray(grid, dtype=float)
        if values.size == 0:
            return grid_array, np.zeros_like(grid_array)
        fractions = np.searchsorted(values, grid_array, side="right") / values.size
        return grid_array, fractions

    def summary(self) -> dict[str, float]:
        """Key metrics as a flat dictionary (used by reports and the CLI)."""
        return {
            "num_apps": float(self.num_apps),
            "total_invocations": float(self.total_invocations),
            "total_cold_starts": float(self.total_cold_starts),
            "overall_cold_start_pct": self.overall_cold_start_percentage,
            "third_quartile_app_cold_start_pct": self.third_quartile_cold_start_percentage,
            "always_cold_fraction": self.always_cold_fraction,
            "wasted_memory_minutes": self.total_wasted_memory_minutes,
            "wasted_memory_mb_minutes": self.total_wasted_memory_mb_minutes,
        }


def merge_results(policy_name: str, results: Iterable[AppSimResult]) -> AggregateResult:
    """Build an :class:`AggregateResult` from per-app results."""
    return AggregateResult(policy_name=policy_name, app_results=tuple(results))
