"""Execution engines for the cold-start simulator.

The per-application simulations behind Figures 14–18 are embarrassingly
parallel (policies are per-application and the simulator models no
cross-application contention), and the fixed-window policies are
closed-form.  This module exploits both properties:

* :func:`simulate_constant_decision_app` — a **vectorized fast path** for
  policies whose decision is a constant ``(prewarm=0, keep-alive=K)``
  pair (the fixed keep-alive family and the no-unloading bound).  Cold
  starts and wasted memory minutes are computed from ``np.diff``-style
  array arithmetic on the invocation timestamps in O(n) numpy ops, with
  no per-invocation Python calls.  Every per-term float operation mirrors
  :class:`~repro.simulation.coldstart.ColdStartSimulator` bit for bit;
  only the final summation differs (numpy's pairwise summation instead of
  sequential accumulation), so results agree with the scalar engine to
  well within 1e-9.
* a **banked** route for stateful policies: applications are stepped
  together through one struct-of-arrays
  :class:`~repro.policies.bank.PolicyBank` (the hybrid histogram policy's
  bank evaluates the Figure 10 state machine with boolean masks across
  all applications at once, see
  :meth:`~repro.simulation.coldstart.ColdStartSimulator.simulate_apps_banked`).
* :class:`SimulationEngine` — routes a policy run over a workload through
  one of four execution modes: ``serial`` (the reference scalar loop),
  ``vectorized`` (the closed-form fast path where the policy supports it,
  scalar otherwise), ``banked`` (the grouped-stepping bank where the
  policy supports it, falling back like ``auto``), and ``parallel``
  (applications sharded across a ``multiprocessing`` pool; each shard
  internally uses the fastest in-process route its policy supports, so
  banks compose with sharding).  ``auto`` picks the fastest in-process
  route: the closed-form fast path, then the bank, then the scalar loop.

Policies opt into the closed-form fast path via the
:attr:`~repro.policies.base.KeepAlivePolicy.supports_vectorized`
capability flag plus
:meth:`~repro.policies.base.KeepAlivePolicy.constant_keepalive_minutes`,
and into the banked route via
:attr:`~repro.policies.base.KeepAlivePolicy.supports_banked` plus
:meth:`~repro.policies.base.KeepAlivePolicy.make_bank` (exposed on
:class:`~repro.policies.registry.PolicyFactory` as well).

The parallel engine shards applications into contiguous chunks, fans the
chunks out over a ``fork``-based worker pool (policy factories capture
closures, which cannot be pickled; forked workers inherit them instead),
and reassembles per-application results in workload order, so the merged
:class:`~repro.simulation.metrics.AggregateResult` is byte-identical no
matter how many workers ran or in which order shards completed.  On
platforms without ``fork`` the shards run in-process, preserving results.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.policies.registry import PolicyFactory
from repro.simulation.coldstart import ColdStartSimulator
from repro.simulation.metrics import AggregateResult, AppSimResult, merge_results

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.trace.schema import Workload

#: Recognized values of :attr:`RunnerOptions.execution`.
EXECUTION_MODES: tuple[str, ...] = ("auto", "serial", "vectorized", "banked", "parallel")

#: Recognized values of :attr:`RunnerOptions.sweep` (multi-policy runs):
#: ``auto`` shares state across policy-family configurations whenever the
#: execution mode allows it, ``family`` forces the shared-state sweep
#: engine for every shareable group, ``per-policy`` always evaluates one
#: policy at a time (the reference used by the equivalence suite).
SWEEP_MODES: tuple[str, ...] = ("auto", "family", "per-policy")

#: Shards per worker: small enough to keep per-shard overhead negligible,
#: large enough that uneven per-app costs still balance across the pool.
_SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class RunnerOptions:
    """Options shared by all policy runs over a workload.

    Attributes:
        use_memory_weights: Weight each application's wasted memory time by
            its average allocated memory.  The paper's simulator assumes
            equal footprints (False), because memory data is not available
            for every application; enabling this gives MB-weighted waste.
        min_invocations: Applications with fewer invocations than this are
            skipped entirely (0 keeps every application, including those
            never invoked, which simply produce empty results).
        execution: Execution engine: ``"serial"`` (reference scalar loop),
            ``"vectorized"`` (closed-form numpy fast path for policies that
            support it, scalar loop otherwise), ``"banked"`` (struct-of-
            arrays policy bank stepping all applications together, for
            policies that support it), ``"parallel"`` (shard applications
            across a worker pool; shards use the fastest in-process route,
            including banks), or ``"auto"`` (fastest in-process route).
        workers: Worker-pool size for the parallel engine; ``None`` uses
            the machine's CPU count.  Ignored by the other engines.
        sweep: Multi-policy sweep routing (``repro.simulation.sweep_engine``):
            ``"auto"`` evaluates whole policy families in one shared-state
            pass when ``execution`` is ``auto`` or ``parallel`` (explicit
            single-engine requests keep the per-policy routing), ``"family"``
            forces the shared pass for every shareable group regardless of
            ``execution``, and ``"per-policy"`` disables sharing entirely.
            Only affects multi-policy runs (``run_policies`` and the
            ``sweep_*`` functions); single-policy runs are untouched.
    """

    use_memory_weights: bool = False
    min_invocations: int = 1
    execution: str = "auto"
    workers: int | None = None
    sweep: str = "auto"

    def __post_init__(self) -> None:
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("worker count must be at least 1")
        if self.sweep not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.sweep!r}; expected one of {SWEEP_MODES}"
            )


# --------------------------------------------------------------------------- #
# Vectorized fast path
# --------------------------------------------------------------------------- #
def simulate_constant_decision_app(
    app_id: str,
    invocation_times_minutes: Sequence[float] | np.ndarray,
    keepalive_minutes: float,
    *,
    horizon_minutes: float,
    first_invocation_cold: bool = True,
    count_tail_waste: bool = True,
    memory_mb: float = 1.0,
) -> AppSimResult:
    """Closed-form simulation of a constant ``(prewarm=0, K)`` policy.

    Equivalent to replaying the sorted timestamps through
    :class:`~repro.simulation.coldstart.ColdStartSimulator` with a policy
    that always returns ``PolicyDecision.fixed(keepalive_minutes)``
    (``math.inf`` models no-unloading): an invocation is warm iff it
    arrives at or before the previous window's expiry, and the idle loaded
    time between invocations is the part of the window that elapsed before
    the next arrival.  All per-interval arithmetic matches the scalar
    engine's float operations exactly; the terms are summed with numpy's
    pairwise summation.

    Args:
        app_id: Application identifier (reporting only).
        invocation_times_minutes: Sorted invocation timestamps (minutes).
        keepalive_minutes: Constant keep-alive window; ``math.inf`` for
            the no-unloading policy.
        horizon_minutes: End of the simulation window.
        first_invocation_cold: Whether the first invocation is cold.
        count_tail_waste: Whether the window left running after the last
            invocation (clipped to the horizon) counts as waste.
        memory_mb: Application memory footprint used to weight the waste.

    Raises:
        ValueError: When a timestamp falls outside ``[0, horizon]`` or the
            timestamps are unsorted, matching the scalar engine's contract.
    """
    times = np.asarray(invocation_times_minutes, dtype=float)
    n = int(times.size)
    if n:
        # Same contract as ColdStartSimulator.simulate_app: reject malformed
        # traces instead of silently computing plausible-looking numbers.
        if float(times.min()) < 0 or float(times.max()) > horizon_minutes:
            raise ValueError("invocation timestamps fall outside the simulation horizon")
        if np.any(np.diff(times) < 0):
            raise ValueError("invocation timestamps must be sorted ascending")
    if n == 0:
        return AppSimResult(
            app_id=app_id,
            invocations=0,
            cold_starts=0,
            wasted_memory_minutes=0.0,
            memory_mb=memory_mb,
        )
    starts = times[:-1]
    arrivals = times[1:]
    # Window expiry after each invocation; with a zero pre-warming window an
    # arrival exactly at the expiry instant is still warm (PolicyDecision.covers).
    window_end = starts + keepalive_minutes
    cold_starts = int(np.count_nonzero(arrivals > window_end))
    if first_invocation_cold:
        cold_starts += 1
    # Idle loaded time per gap: window elapsed before the next arrival,
    # clipped to the horizon — identical per-term ops to
    # ColdStartSimulator._waste_between with load_start == previous_time.
    effective_end = np.minimum(np.minimum(window_end, arrivals), horizon_minutes)
    waste_terms = np.maximum(effective_end - starts, 0.0)
    # np.sum's pairwise summation is at least as accurate as the scalar
    # engine's sequential accumulation; the per-term values are bit-identical.
    wasted = float(np.sum(waste_terms))
    if count_tail_waste:
        tail_end = min(times[-1] + keepalive_minutes, horizon_minutes)
        if tail_end > times[-1]:
            wasted += tail_end - float(times[-1])
    return AppSimResult(
        app_id=app_id,
        invocations=n,
        cold_starts=cold_starts,
        wasted_memory_minutes=wasted,
        memory_mb=memory_mb,
    )


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _AppWorkItem:
    """One application's simulation inputs, resolved from the workload."""

    app_id: str
    times: np.ndarray
    memory_mb: float


class SimulationEngine:
    """Runs one policy over a workload under a chosen execution mode.

    The engine is the single routing point used by
    :class:`~repro.simulation.runner.WorkloadRunner` and the sweeps: it
    resolves per-application work items once, decides per policy whether
    the vectorized fast path applies, and either loops in-process or fans
    shards out over a worker pool.
    """

    def __init__(self, workload: "Workload", options: RunnerOptions | None = None) -> None:
        self.workload = workload
        self.options = options or RunnerOptions()
        self._simulator = ColdStartSimulator(horizon_minutes=workload.duration_minutes)

    @property
    def simulator(self) -> ColdStartSimulator:
        """The simulator carrying the horizon and cold-start conventions."""
        return self._simulator

    def work_items(self) -> list[_AppWorkItem]:
        """Per-application inputs, resolved once (see :meth:`_work_items`).

        Public entry point used by the sweep engine, which evaluates whole
        policy families over the same work items this engine runs single
        policies over.
        """
        return self._work_items()

    # ------------------------------------------------------------------ #
    def run_policy(
        self,
        factory: PolicyFactory,
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> AggregateResult:
        """Simulate one policy (fresh instance per application) over the workload."""
        execution = self.options.execution
        # One probe instance answers every capability question.
        probe = factory.create()
        vectorize = execution in ("auto", "vectorized", "banked", "parallel")
        keepalive = (
            probe.constant_keepalive_minutes()
            if vectorize and probe.supports_vectorized
            else None
        )
        # The closed-form fast path beats bank stepping when both apply, so
        # the bank is the fallback tier for stateful policies.
        use_bank = (
            keepalive is None
            and execution in ("auto", "banked", "parallel")
            and probe.supports_banked
        )
        if execution == "parallel":
            results = self._run_parallel(factory, keepalive, use_bank, progress)
        elif use_bank:
            results = self._run_banked(factory, self._work_items(), progress)
        else:
            results = self._run_in_process(factory, keepalive, progress)
        return merge_results(factory.name, results)

    def _work_items(self) -> list[_AppWorkItem]:
        """Resolve per-app inputs as zero-copy views of the columnar store.

        Each item's ``times`` is a read-only slice of the store's flat
        sorted column — no per-app merge, sort, or cache, and forked
        parallel workers inherit one shared buffer instead of pickling
        per-app arrays.
        """
        store = self.workload.store
        counts = store.app_counts()
        items: list[_AppWorkItem] = []
        for app_index, app in enumerate(self.workload.apps):
            if counts[app_index] < self.options.min_invocations:
                continue
            memory_mb = (
                app.memory.average_mb if self.options.use_memory_weights else 1.0
            )
            items.append(
                _AppWorkItem(
                    app_id=app.app_id,
                    times=store.app_slice(app_index),
                    memory_mb=memory_mb,
                )
            )
        return items

    def _simulate_item(
        self, item: _AppWorkItem, factory: PolicyFactory, keepalive: float | None
    ) -> AppSimResult:
        if keepalive is not None:
            return simulate_constant_decision_app(
                item.app_id,
                item.times,
                keepalive,
                horizon_minutes=self._simulator.horizon_minutes,
                first_invocation_cold=self._simulator.first_invocation_cold,
                count_tail_waste=self._simulator.count_tail_waste,
                memory_mb=item.memory_mb,
            )
        result = self._simulator.simulate_app(
            item.app_id, item.times, factory.create(), memory_mb=item.memory_mb
        )
        assert isinstance(result, AppSimResult)
        return result

    # ------------------------------------------------------------------ #
    def _run_banked(
        self,
        factory: PolicyFactory,
        items: Sequence[_AppWorkItem],
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Banked execution: one policy bank steps all items together."""
        results = self._simulator.simulate_apps_banked(
            [item.app_id for item in items],
            [item.times for item in items],
            factory.make_bank,
            memory_mb=[item.memory_mb for item in items],
        )
        if progress is not None:
            progress(len(items), len(items))
        return results

    # ------------------------------------------------------------------ #
    def _run_in_process(
        self,
        factory: PolicyFactory,
        keepalive: float | None,
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Serial/vectorized execution, one application at a time."""
        items = self._work_items()
        total = len(items)
        results: list[AppSimResult] = []
        for index, item in enumerate(items):
            results.append(self._simulate_item(item, factory, keepalive))
            if progress is not None:
                progress(index + 1, total)
        return results

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self,
        factory: PolicyFactory,
        keepalive: float | None,
        use_bank: bool,
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Shard applications across a worker pool; deterministic ordering.

        Results are reassembled by shard index (shards are contiguous runs
        of applications in workload order), so the output is independent of
        the worker count and of shard completion order: bank rows are
        mutually independent, so stepping an application in a smaller
        (per-shard) bank produces exactly the results it gets in one
        workload-wide bank.  Progress is aggregated across shards as they
        complete.
        """
        items = self._work_items()
        total = len(items)
        if total == 0:
            return []
        workers = self.options.workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(int(workers), total))
        num_shards = min(total, workers * _SHARDS_PER_WORKER)
        bounds = np.linspace(0, total, num_shards + 1).astype(int)
        shards = [
            items[bounds[i] : bounds[i + 1]]
            for i in range(num_shards)
            if bounds[i + 1] > bounds[i]
        ]

        done = 0

        def run_shard(shard_id: int) -> list[AppSimResult]:
            return self._run_shard_items(shards[shard_id], factory, keepalive, use_bank)

        def on_result(shard_id: int, results: list[AppSimResult]) -> None:
            nonlocal done
            done += len(results)
            if progress is not None:
                progress(done, total)

        ordered = fork_pool_map(run_shard, len(shards), workers, on_result=on_result)
        return [result for shard in ordered for result in shard]

    def _run_shard_items(
        self,
        shard: Sequence[_AppWorkItem],
        factory: PolicyFactory,
        keepalive: float | None,
        use_bank: bool = False,
    ) -> list[AppSimResult]:
        if use_bank:
            return self._run_banked(factory, shard, progress=None)
        return [self._simulate_item(item, factory, keepalive) for item in shard]


# --------------------------------------------------------------------------- #
# Shared fork-pool infrastructure
# --------------------------------------------------------------------------- #
#: Task closure inherited by forked pool workers (engine shards and replay
#: campaigns capture policy factories, which hold closures that cannot be
#: pickled, so the whole task travels by fork instead of by pickle).
#: Guarded by _POOL_TASK_LOCK from assignment until the pool has forked.
_POOL_TASK: Callable[[int], object] | None = None
_POOL_TASK_LOCK = threading.Lock()


def _pool_entry(task_id: int) -> tuple[int, object]:
    """Worker entry point: run one task of the forked closure."""
    assert _POOL_TASK is not None, "pool task not initialized before fork"
    return task_id, _POOL_TASK(task_id)


def fork_pool_map(
    task: Callable[[int], object],
    num_tasks: int,
    workers: int,
    *,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Run ``task(task_id)`` for every id over a fork-based worker pool.

    The shared parallel backbone of the simulation engine's sharded runs
    and of the platform replay campaigns: tasks are dispatched to forked
    workers (the closure is inherited through fork, so it may capture
    unpicklable state — only the *results* must pickle), and the returned
    list is ordered by task id regardless of completion order or worker
    count.  Falls back to an in-process loop (same results) when only one
    worker is requested or the platform lacks ``fork``.

    Args:
        task: Closure mapping a task id in ``range(num_tasks)`` to a
            picklable result.
        num_tasks: Number of tasks.
        workers: Maximum pool size (clamped to ``num_tasks``).
        on_result: Optional callback invoked as ``(task_id, result)`` in
            completion order (progress reporting).
    """
    if num_tasks == 0:
        return []
    workers = max(1, min(int(workers), num_tasks))
    if workers == 1 or "fork" not in multiprocessing.get_all_start_methods():
        results = []
        for task_id in range(num_tasks):
            result = task(task_id)
            results.append(result)
            if on_result is not None:
                on_result(task_id, result)
        return results

    global _POOL_TASK
    context = multiprocessing.get_context("fork")
    # The lock covers assignment through fork: once Pool() has forked its
    # workers they hold an inherited copy of the task, so the parent can
    # clear the global immediately and concurrent runs cannot observe
    # (or fork with) each other's state.
    with _POOL_TASK_LOCK:
        _POOL_TASK = task
        try:
            pool = context.Pool(processes=workers)
        finally:
            _POOL_TASK = None
    ordered: list = [None] * num_tasks
    with pool:
        for task_id, result in pool.imap_unordered(_pool_entry, range(num_tasks)):
            ordered[task_id] = result
            if on_result is not None:
                on_result(task_id, result)
    return ordered
