"""Execution engines for the cold-start simulator.

The per-application simulations behind Figures 14–18 are embarrassingly
parallel (policies are per-application and the simulator models no
cross-application contention), and the fixed-window policies are
closed-form.  This module exploits both properties:

* :func:`simulate_constant_decision_app` — a **vectorized fast path** for
  policies whose decision is a constant ``(prewarm=0, keep-alive=K)``
  pair (the fixed keep-alive family and the no-unloading bound).  Cold
  starts and wasted memory minutes are computed from ``np.diff``-style
  array arithmetic on the invocation timestamps in O(n) numpy ops, with
  no per-invocation Python calls.  Every per-term float operation mirrors
  :class:`~repro.simulation.coldstart.ColdStartSimulator` bit for bit;
  only the final summation differs (numpy's pairwise summation instead of
  sequential accumulation), so results agree with the scalar engine to
  well within 1e-9.
* a **banked** route for stateful policies: applications are stepped
  together through one struct-of-arrays
  :class:`~repro.policies.bank.PolicyBank` (the hybrid histogram policy's
  bank evaluates the Figure 10 state machine with boolean masks across
  all applications at once, see
  :meth:`~repro.simulation.coldstart.ColdStartSimulator.simulate_apps_banked`).
* :class:`SimulationEngine` — routes a policy run over a workload through
  one of four execution modes: ``serial`` (the reference scalar loop),
  ``vectorized`` (the closed-form fast path where the policy supports it,
  scalar otherwise), ``banked`` (the grouped-stepping bank where the
  policy supports it, falling back like ``auto``), and ``parallel``
  (applications sharded across a ``multiprocessing`` pool; each shard
  internally uses the fastest in-process route its policy supports, so
  banks compose with sharding).  ``auto`` picks the fastest in-process
  route: the closed-form fast path, then the bank, then the scalar loop.

Policies opt into the closed-form fast path via the
:attr:`~repro.policies.base.KeepAlivePolicy.supports_vectorized`
capability flag plus
:meth:`~repro.policies.base.KeepAlivePolicy.constant_keepalive_minutes`,
and into the banked route via
:attr:`~repro.policies.base.KeepAlivePolicy.supports_banked` plus
:meth:`~repro.policies.base.KeepAlivePolicy.make_bank` (exposed on
:class:`~repro.policies.registry.PolicyFactory` as well).

The parallel engine shards applications into contiguous chunks, fans the
chunks out over a ``fork``-based worker pool (policy factories capture
closures, which cannot be pickled; forked workers inherit them instead),
and reassembles per-application results in workload order, so the merged
:class:`~repro.simulation.metrics.AggregateResult` is byte-identical no
matter how many workers ran or in which order shards completed.  On
platforms without ``fork`` the shards run in-process, preserving results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.pool import fork_pool_imap, fork_pool_map  # noqa: F401 - re-export
from repro.policies.registry import PolicyFactory
from repro.simulation.coldstart import ColdStartSimulator
from repro.simulation.metrics import AggregateResult, AppSimResult, merge_results
from repro.trace.store import InvocationStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.trace.schema import Workload

#: Recognized values of :attr:`RunnerOptions.execution`.
EXECUTION_MODES: tuple[str, ...] = ("auto", "serial", "vectorized", "banked", "parallel")

#: Recognized values of :attr:`RunnerOptions.sweep` (multi-policy runs):
#: ``auto`` shares state across policy-family configurations whenever the
#: execution mode allows it, ``family`` forces the shared-state sweep
#: engine for every shareable group, ``per-policy`` always evaluates one
#: policy at a time (the reference used by the equivalence suite).
SWEEP_MODES: tuple[str, ...] = ("auto", "family", "per-policy")

#: Shards per worker: small enough to keep per-shard overhead negligible,
#: large enough that uneven per-app costs still balance across the pool.
_SHARDS_PER_WORKER = 4

#: Estimated resident bytes of per-application engine state in one chunk:
#: the banked hybrid's histogram bins (240 × int64 at the default config)
#: plus its ARIMA idle-time ring (64 doubles) and counters.  Used by the
#: ``max_resident_bytes`` chunk geometry so many-small-app workloads are
#: bounded by app count too, not only by invocation bytes.
_PER_APP_RESIDENT_BYTES = 4096


@dataclass(frozen=True)
class RunnerOptions:
    """Options shared by all policy runs over a workload.

    Attributes:
        use_memory_weights: Weight each application's wasted memory time by
            its average allocated memory.  The paper's simulator assumes
            equal footprints (False), because memory data is not available
            for every application; enabling this gives MB-weighted waste.
        min_invocations: Applications with fewer invocations than this are
            skipped entirely (0 keeps every application, including those
            never invoked, which simply produce empty results).
        execution: Execution engine: ``"serial"`` (reference scalar loop),
            ``"vectorized"`` (closed-form numpy fast path for policies that
            support it, scalar loop otherwise), ``"banked"`` (struct-of-
            arrays policy bank stepping all applications together, for
            policies that support it), ``"parallel"`` (shard applications
            across a worker pool; shards use the fastest in-process route,
            including banks), or ``"auto"`` (fastest in-process route).
        workers: Worker-pool size for the parallel engine; ``None`` uses
            the machine's CPU count.  Ignored by the other engines.
        sweep: Multi-policy sweep routing (``repro.simulation.sweep_engine``):
            ``"auto"`` evaluates whole policy families in one shared-state
            pass when ``execution`` is ``auto`` or ``parallel`` (explicit
            single-engine requests keep the per-policy routing), ``"family"``
            forces the shared pass for every shareable group regardless of
            ``execution``, and ``"per-policy"`` disables sharing entirely.
            Only affects multi-policy runs (``run_policies`` and the
            ``sweep_*`` functions); single-policy runs are untouched.
        max_resident_bytes: Memory budget (bytes of invocation columns)
            for one engine pass.  ``None`` (the default) iterates the
            whole workload at once; a budget makes the in-process routes
            — and each parallel shard — walk the store in contiguous
            application chunks whose ``times`` columns fit the budget,
            releasing memory-mapped pages between chunks
            (:meth:`~repro.trace.store.InvocationStore.release_mapped_pages`),
            so peak RSS stays near the budget instead of the trace size.
            Results are unaffected: chunked passes are exactly the
            unchunked passes evaluated range by range.
    """

    use_memory_weights: bool = False
    min_invocations: int = 1
    execution: str = "auto"
    workers: int | None = None
    sweep: str = "auto"
    max_resident_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("worker count must be at least 1")
        if self.sweep not in SWEEP_MODES:
            raise ValueError(
                f"unknown sweep mode {self.sweep!r}; expected one of {SWEEP_MODES}"
            )
        if self.max_resident_bytes is not None and self.max_resident_bytes < 1:
            raise ValueError("max_resident_bytes must be positive")


# --------------------------------------------------------------------------- #
# Vectorized fast path
# --------------------------------------------------------------------------- #
def simulate_constant_decision_app(
    app_id: str,
    invocation_times_minutes: Sequence[float] | np.ndarray,
    keepalive_minutes: float,
    *,
    horizon_minutes: float,
    first_invocation_cold: bool = True,
    count_tail_waste: bool = True,
    memory_mb: float = 1.0,
) -> AppSimResult:
    """Closed-form simulation of a constant ``(prewarm=0, K)`` policy.

    Equivalent to replaying the sorted timestamps through
    :class:`~repro.simulation.coldstart.ColdStartSimulator` with a policy
    that always returns ``PolicyDecision.fixed(keepalive_minutes)``
    (``math.inf`` models no-unloading): an invocation is warm iff it
    arrives at or before the previous window's expiry, and the idle loaded
    time between invocations is the part of the window that elapsed before
    the next arrival.  All per-interval arithmetic matches the scalar
    engine's float operations exactly; the terms are summed with numpy's
    pairwise summation.

    Args:
        app_id: Application identifier (reporting only).
        invocation_times_minutes: Sorted invocation timestamps (minutes).
        keepalive_minutes: Constant keep-alive window; ``math.inf`` for
            the no-unloading policy.
        horizon_minutes: End of the simulation window.
        first_invocation_cold: Whether the first invocation is cold.
        count_tail_waste: Whether the window left running after the last
            invocation (clipped to the horizon) counts as waste.
        memory_mb: Application memory footprint used to weight the waste.

    Raises:
        ValueError: When a timestamp falls outside ``[0, horizon]`` or the
            timestamps are unsorted, matching the scalar engine's contract.
    """
    times = np.asarray(invocation_times_minutes, dtype=float)
    n = int(times.size)
    if n:
        # Same contract as ColdStartSimulator.simulate_app: reject malformed
        # traces instead of silently computing plausible-looking numbers.
        if float(times.min()) < 0 or float(times.max()) > horizon_minutes:
            raise ValueError("invocation timestamps fall outside the simulation horizon")
        if np.any(np.diff(times) < 0):
            raise ValueError("invocation timestamps must be sorted ascending")
    if n == 0:
        return AppSimResult(
            app_id=app_id,
            invocations=0,
            cold_starts=0,
            wasted_memory_minutes=0.0,
            memory_mb=memory_mb,
        )
    starts = times[:-1]
    arrivals = times[1:]
    # Window expiry after each invocation; with a zero pre-warming window an
    # arrival exactly at the expiry instant is still warm (PolicyDecision.covers).
    window_end = starts + keepalive_minutes
    cold_starts = int(np.count_nonzero(arrivals > window_end))
    if first_invocation_cold:
        cold_starts += 1
    # Idle loaded time per gap: window elapsed before the next arrival,
    # clipped to the horizon — identical per-term ops to
    # ColdStartSimulator._waste_between with load_start == previous_time.
    effective_end = np.minimum(np.minimum(window_end, arrivals), horizon_minutes)
    waste_terms = np.maximum(effective_end - starts, 0.0)
    # np.sum's pairwise summation is at least as accurate as the scalar
    # engine's sequential accumulation; the per-term values are bit-identical.
    wasted = float(np.sum(waste_terms))
    if count_tail_waste:
        tail_end = min(times[-1] + keepalive_minutes, horizon_minutes)
        if tail_end > times[-1]:
            wasted += tail_end - float(times[-1])
    return AppSimResult(
        app_id=app_id,
        invocations=n,
        cold_starts=cold_starts,
        wasted_memory_minutes=wasted,
        memory_mb=memory_mb,
    )


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _AppWorkItem:
    """One application's simulation inputs, resolved from the workload."""

    app_id: str
    times: np.ndarray
    memory_mb: float


class SimulationEngine:
    """Runs one policy over a workload under a chosen execution mode.

    The engine is the single routing point used by
    :class:`~repro.simulation.runner.WorkloadRunner` and the sweeps: it
    resolves per-application work items once, decides per policy whether
    the vectorized fast path applies, and either loops in-process or fans
    shards out over a worker pool.

    Accepts either a full :class:`~repro.trace.schema.Workload` or a bare
    :class:`~repro.trace.store.InvocationStore` (e.g. one streamed to disk
    by ``repro trace gen`` and re-opened memory-mapped).  Store-only mode
    has no per-application metadata, so ``use_memory_weights`` weighs
    every application at 1 MB.
    """

    def __init__(
        self,
        workload: "Workload | InvocationStore",
        options: RunnerOptions | None = None,
    ) -> None:
        if isinstance(workload, InvocationStore):
            self.workload: "Workload | None" = None
            self._store = workload
            self._apps = None
        else:
            self.workload = workload
            self._store = workload.store
            self._apps = workload.apps
        self.options = options or RunnerOptions()
        self._simulator = ColdStartSimulator(
            horizon_minutes=self._store.duration_minutes
        )
        # Descriptor plumbing for the parallel route: forked workers detect
        # that they are not this pid and re-open the store from its path.
        self._parent_pid = os.getpid()
        self._worker_store: tuple[int, InvocationStore] | None = None

    @property
    def simulator(self) -> ColdStartSimulator:
        """The simulator carrying the horizon and cold-start conventions."""
        return self._simulator

    @property
    def store(self) -> InvocationStore:
        """The columnar invocation store the engine iterates over."""
        return self._store

    def work_items(self) -> list[_AppWorkItem]:
        """Per-application inputs for the whole workload.

        Public entry point used by the sweep engine, which evaluates whole
        policy families over the same work items this engine runs single
        policies over.
        """
        return self.work_items_range(0, self._store.num_apps)

    def work_items_range(
        self,
        start_app: int,
        stop_app: int,
        *,
        store: InvocationStore | None = None,
    ) -> list[_AppWorkItem]:
        """Work items for the contiguous application range ``[start, stop)``.

        Each item's ``times`` is a read-only, zero-copy slice of the
        store's flat sorted column — for a memory-mapped store the bytes
        are only paged in when a simulation touches them, which is what
        makes the ``max_resident_bytes`` chunked passes stream instead of
        loading the trace.  ``store`` substitutes a re-opened handle of
        the same archive (parallel shard workers); application indices and
        ids are identical by construction.
        """
        store = self._store if store is None else store
        counts = np.diff(store.app_offsets[start_app : stop_app + 1])
        min_invocations = self.options.min_invocations
        use_weights = self.options.use_memory_weights
        apps = self._apps
        items: list[_AppWorkItem] = []
        for offset in range(stop_app - start_app):
            if counts[offset] < min_invocations:
                continue
            app_index = start_app + offset
            if apps is not None:
                app = apps[app_index]
                app_id = app.app_id
                memory_mb = app.memory.average_mb if use_weights else 1.0
            else:
                app_id = store.app_ids[app_index]
                memory_mb = 1.0
            items.append(
                _AppWorkItem(
                    app_id=app_id,
                    times=store.app_slice(app_index),
                    memory_mb=memory_mb,
                )
            )
        return items

    def eligible_app_count(self) -> int:
        """How many applications pass the ``min_invocations`` filter."""
        if self.options.min_invocations <= 0:
            return self._store.num_apps
        counts = self._store.app_counts()
        return int(np.count_nonzero(counts >= self.options.min_invocations))

    # ------------------------------------------------------------------ #
    # Memory-bounded chunking and parallel shard geometry
    # ------------------------------------------------------------------ #
    def app_chunk_bounds(
        self, start_app: int = 0, stop_app: int | None = None
    ) -> list[tuple[int, int]]:
        """Contiguous app ranges honouring ``options.max_resident_bytes``.

        Splits ``[start_app, stop_app)`` greedily so each range's cost
        fits the budget, where cost charges 8 bytes per invocation (the
        ``times`` column a simulation pass touches) plus
        ``_PER_APP_RESIDENT_BYTES`` per application for the banked
        policies' per-row state (histogram bins, ARIMA ring, counters).
        Charging apps as well as invocations keeps peak RSS flat in app
        count, not just in trace length.  A single application larger
        than the budget gets its own range rather than failing.  With no
        budget the whole range comes back as one chunk.
        """
        stop_app = self._store.num_apps if stop_app is None else stop_app
        if stop_app <= start_app:
            return []
        limit = self.options.max_resident_bytes
        if limit is None:
            return [(start_app, stop_app)]
        offsets = np.asarray(self._store.app_offsets)
        # Strictly increasing cumulative cost; searchsorted finds the
        # farthest stop whose chunk stays within budget.
        cost = offsets * 8 + np.arange(offsets.size, dtype=np.int64) * (
            _PER_APP_RESIDENT_BYTES
        )
        bounds: list[tuple[int, int]] = []
        cursor = start_app
        while cursor < stop_app:
            target = int(cost[cursor]) + max(int(limit), 1)
            stop = int(np.searchsorted(cost, target, side="right")) - 1
            stop = min(max(stop, cursor + 1), stop_app)
            bounds.append((cursor, stop))
            cursor = stop
        return bounds

    def shard_ranges(self, workers: int) -> list[tuple[int, int]]:
        """Contiguous app ranges for the parallel route's shards.

        Shards are balanced by invocation count (not application count, so
        skewed workloads still spread evenly), oversharded by
        ``_SHARDS_PER_WORKER``, and — under a ``max_resident_bytes``
        budget — further split so no single shard task exceeds the budget.
        Concatenating per-range results in range order reproduces the
        in-process application order for any worker count.
        """
        store = self._store
        num_apps = store.num_apps
        if num_apps == 0:
            return []
        num_shards = min(num_apps, max(1, int(workers)) * _SHARDS_PER_WORKER)
        offsets = np.asarray(store.app_offsets)
        targets = np.linspace(0, int(offsets[-1]), num_shards + 1)
        bounds = np.searchsorted(offsets, targets, side="left").astype(int)
        bounds = np.minimum(bounds, num_apps)
        bounds[0] = 0
        bounds[-1] = num_apps
        bounds = np.maximum.accumulate(bounds)
        ranges: list[tuple[int, int]] = []
        for index in range(num_shards):
            start, stop = int(bounds[index]), int(bounds[index + 1])
            if stop <= start:
                continue
            if self.options.max_resident_bytes is not None:
                ranges.extend(self.app_chunk_bounds(start, stop))
            else:
                ranges.append((start, stop))
        return ranges

    def release_mapped_pages(self) -> bool:
        """Drop this process's resident pages of the mapped columns."""
        return self._store.release_mapped_pages()

    def worker_store(self) -> InvocationStore:
        """The store handle the calling process should read columns from.

        In the engine's own process this is simply the engine's store.  A
        forked parallel worker whose store came from disk re-opens the
        archive memory-mapped instead: only the ``(path, app range)``
        descriptor travels through fork, the pages come from the shared
        OS page cache, and the worker never touches the parent's columns.
        Stores without a backing file (built in memory, or subsets) fall
        back to the fork-inherited arrays, which preserves results.
        """
        pid = os.getpid()
        if pid == self._parent_pid:
            return self._store
        cached = self._worker_store
        if cached is not None and cached[0] == pid:
            return cached[1]
        path = self._store.source_path
        if path is None:
            store = self._store
        else:
            store = InvocationStore.open(path, mmap=True)
        self._worker_store = (pid, store)
        return store

    # ------------------------------------------------------------------ #
    def run_policy(
        self,
        factory: PolicyFactory,
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> AggregateResult:
        """Simulate one policy (fresh instance per application) over the workload."""
        execution = self.options.execution
        # One probe instance answers every capability question.
        probe = factory.create()
        vectorize = execution in ("auto", "vectorized", "banked", "parallel")
        keepalive = (
            probe.constant_keepalive_minutes()
            if vectorize and probe.supports_vectorized
            else None
        )
        # The closed-form fast path beats bank stepping when both apply, so
        # the bank is the fallback tier for stateful policies.
        use_bank = (
            keepalive is None
            and execution in ("auto", "banked", "parallel")
            and probe.supports_banked
        )
        if execution == "parallel":
            results = self._run_parallel(factory, keepalive, use_bank, progress)
        else:
            results = self._run_in_process(factory, keepalive, use_bank, progress)
        return merge_results(factory.name, results)

    def _simulate_item(
        self, item: _AppWorkItem, factory: PolicyFactory, keepalive: float | None
    ) -> AppSimResult:
        if keepalive is not None:
            return simulate_constant_decision_app(
                item.app_id,
                item.times,
                keepalive,
                horizon_minutes=self._simulator.horizon_minutes,
                first_invocation_cold=self._simulator.first_invocation_cold,
                count_tail_waste=self._simulator.count_tail_waste,
                memory_mb=item.memory_mb,
            )
        result = self._simulator.simulate_app(
            item.app_id, item.times, factory.create(), memory_mb=item.memory_mb
        )
        assert isinstance(result, AppSimResult)
        return result

    # ------------------------------------------------------------------ #
    def _run_banked(
        self,
        factory: PolicyFactory,
        items: Sequence[_AppWorkItem],
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Banked execution: one policy bank steps all items together."""
        results = self._simulator.simulate_apps_banked(
            [item.app_id for item in items],
            [item.times for item in items],
            factory.make_bank,
            memory_mb=[item.memory_mb for item in items],
        )
        if progress is not None:
            progress(len(items), len(items))
        return results

    # ------------------------------------------------------------------ #
    def _run_in_process(
        self,
        factory: PolicyFactory,
        keepalive: float | None,
        use_bank: bool,
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Serial/vectorized/banked execution, memory-bounded when asked.

        With ``max_resident_bytes`` set the workload is walked chunk by
        chunk (:meth:`app_chunk_bounds`) and the store's mapped pages are
        released after each chunk; chunk boundaries do not change any
        per-application result (bank rows are mutually independent), so
        the concatenated results equal the unchunked pass exactly.
        """
        bounds = self.app_chunk_bounds()
        chunked = len(bounds) > 1
        total = self.eligible_app_count() if progress is not None else 0
        done = 0
        results: list[AppSimResult] = []
        for start, stop in bounds:
            items = self.work_items_range(start, stop)
            if use_bank:
                results.extend(self._run_banked(factory, items, progress=None))
                done += len(items)
                if progress is not None:
                    progress(done, total)
            else:
                for item in items:
                    results.append(self._simulate_item(item, factory, keepalive))
                    done += 1
                    if progress is not None:
                        progress(done, total)
            if chunked:
                self._store.release_mapped_pages()
        return results

    # ------------------------------------------------------------------ #
    def _run_parallel(
        self,
        factory: PolicyFactory,
        keepalive: float | None,
        use_bank: bool,
        progress: Callable[[int, int], None] | None,
    ) -> list[AppSimResult]:
        """Shard application ranges across a worker pool; deterministic.

        Shards are contiguous application ranges (:meth:`shard_ranges`)
        reassembled by shard index, so the output is independent of the
        worker count and of shard completion order: bank rows are
        mutually independent, so stepping an application in a smaller
        (per-shard) bank produces exactly the results it gets in one
        workload-wide bank.  Workers receive only the range — each forked
        worker re-opens a disk-backed store memory-mapped
        (:meth:`worker_store`), sharing clean page-cache pages instead of
        duplicating columns.  Progress aggregates across shards as they
        complete.
        """
        total = self.eligible_app_count()
        if total == 0:
            return []
        workers = self.options.workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(int(workers), total))
        ranges = self.shard_ranges(workers)

        done = 0

        def run_shard(shard_id: int) -> list[AppSimResult]:
            start, stop = ranges[shard_id]
            return self._run_shard_range(start, stop, factory, keepalive, use_bank)

        def on_result(shard_id: int, results: list[AppSimResult]) -> None:
            nonlocal done
            done += len(results)
            if progress is not None:
                progress(done, total)

        ordered = fork_pool_map(run_shard, len(ranges), workers, on_result=on_result)
        return [result for shard in ordered for result in shard]

    def _run_shard_range(
        self,
        start_app: int,
        stop_app: int,
        factory: PolicyFactory,
        keepalive: float | None,
        use_bank: bool = False,
    ) -> list[AppSimResult]:
        """One shard task: simulate ``[start_app, stop_app)`` in this process."""
        store = self.worker_store()
        items = self.work_items_range(start_app, stop_app, store=store)
        if use_bank:
            results = self._run_banked(factory, items, progress=None)
        else:
            results = [self._simulate_item(item, factory, keepalive) for item in items]
        if self.options.max_resident_bytes is not None:
            store.release_mapped_pages()
        return results


# --------------------------------------------------------------------------- #
# Shared fork-pool infrastructure now lives in :mod:`repro.core.pool`
# (the parallel trace generator streams over the same pool); re-exported
# here because the engine is where every simulation-side caller imports
# it from.
# --------------------------------------------------------------------------- #
