"""Trace-driven cold-start simulator (Section 5.1 of the paper).

The simulator replays an application's invocation timestamps against a
keep-alive policy and determines, for every invocation, whether it would
have been a warm or a cold start, while accumulating the *wasted memory
time*: the time the application's image was kept in memory without
executing anything.

Following the paper's methodology:

* the first invocation of every application is a cold start;
* function execution times are simulated as zero, which makes the measured
  wasted memory time a conservative (worst-case) figure and makes idle
  times equal to inter-arrival times;
* applications are simulated independently (the policy is per-application
  and there is no contention in the simulator — capacity effects are the
  platform substrate's job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hybrid import HybridHistogramPolicy
from repro.core.windows import PolicyDecision
from repro.policies.base import KeepAlivePolicy
from repro.simulation.metrics import AppSimResult


@dataclass(frozen=True)
class InvocationOutcome:
    """Outcome of a single simulated invocation."""

    time_minutes: float
    cold: bool
    decision: PolicyDecision


@dataclass(frozen=True)
class AppSimulationTrace:
    """Full per-invocation record of one application's simulation."""

    app_id: str
    outcomes: tuple[InvocationOutcome, ...]
    wasted_memory_minutes: float

    @property
    def cold_starts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cold)

    @property
    def invocations(self) -> int:
        return len(self.outcomes)


class ColdStartSimulator:
    """Simulates one keep-alive policy over per-application invocation times.

    Args:
        horizon_minutes: End of the simulation window.  Keep-alive windows
            extending past the horizon only accumulate waste up to the
            horizon (the trace ends there).
        first_invocation_cold: Whether the first invocation of every
            application counts as a cold start (True in the paper).
        count_tail_waste: Whether memory kept loaded after the last
            invocation (until the window expires or the horizon is reached)
            counts as waste.  The paper's wasted-memory metric accounts for
            all time an image is loaded without executing, so this defaults
            to True.
    """

    def __init__(
        self,
        horizon_minutes: float,
        *,
        first_invocation_cold: bool = True,
        count_tail_waste: bool = True,
    ) -> None:
        if horizon_minutes <= 0:
            raise ValueError("simulation horizon must be positive")
        self.horizon_minutes = float(horizon_minutes)
        self.first_invocation_cold = first_invocation_cold
        self.count_tail_waste = count_tail_waste

    # ------------------------------------------------------------------ #
    def simulate_app(
        self,
        app_id: str,
        invocation_times_minutes: Sequence[float] | np.ndarray,
        policy: KeepAlivePolicy,
        *,
        memory_mb: float = 1.0,
        detailed: bool = False,
        sort: bool = False,
    ) -> AppSimResult | AppSimulationTrace:
        """Simulate one application under one policy instance.

        Args:
            app_id: Application identifier (only used for reporting).
            invocation_times_minutes: Sorted invocation timestamps.
            policy: A fresh policy instance dedicated to this application.
            memory_mb: Application memory footprint, used to weight the
                wasted memory time; the paper's simulations assume equal
                footprints (the default of 1.0).
            detailed: When True, return the full per-invocation
                :class:`AppSimulationTrace` instead of the summary record.
            sort: Opt-in for unsorted input: sort the timestamps before
                simulating.  By default unsorted input raises ``ValueError``
                — an out-of-order trace usually signals a malformed loader,
                and silently sorting would mask it.

        Raises:
            ValueError: When a timestamp falls outside ``[0, horizon]``, or
                when the timestamps are unsorted and ``sort`` is False.
        """
        times = np.asarray(invocation_times_minutes, dtype=float)
        if times.size:
            # Validate the raw input before any normalization: range-checking
            # a silently sorted array would mask malformed traces.
            if float(np.min(times)) < 0 or float(np.max(times)) > self.horizon_minutes:
                raise ValueError(
                    "invocation timestamps fall outside the simulation horizon"
                )
            if np.any(np.diff(times) < 0):
                if not sort:
                    raise ValueError(
                        "invocation timestamps must be sorted ascending; pass "
                        "sort=True to sort a trusted-but-unsorted trace"
                    )
                times = np.sort(times)

        outcomes: list[InvocationOutcome] = []
        wasted_minutes = 0.0
        cold_starts = 0
        previous_time: float | None = None
        previous_decision: PolicyDecision | None = None

        for timestamp in times:
            timestamp = float(timestamp)
            if previous_decision is None or previous_time is None:
                cold = self.first_invocation_cold
            else:
                cold = not previous_decision.covers(previous_time, timestamp)
                wasted_minutes += self._waste_between(
                    previous_time, previous_decision, timestamp
                )
            if cold:
                cold_starts += 1
            decision = policy.on_invocation(timestamp, cold=cold)
            if detailed:
                outcomes.append(
                    InvocationOutcome(time_minutes=timestamp, cold=cold, decision=decision)
                )
            previous_time = timestamp
            previous_decision = decision

        if (
            self.count_tail_waste
            and previous_decision is not None
            and previous_time is not None
        ):
            wasted_minutes += self._waste_between(
                previous_time, previous_decision, self.horizon_minutes
            )

        if detailed:
            return AppSimulationTrace(
                app_id=app_id,
                outcomes=tuple(outcomes),
                wasted_memory_minutes=wasted_minutes,
            )
        mode_counts: dict[str, int] = {}
        if isinstance(policy, HybridHistogramPolicy):
            stats = policy.stats
            mode_counts = {
                "histogram": stats.histogram_decisions,
                "standard": stats.standard_decisions,
                "arima": stats.arima_decisions,
            }
        return AppSimResult(
            app_id=app_id,
            invocations=int(times.size),
            cold_starts=cold_starts,
            wasted_memory_minutes=wasted_minutes,
            memory_mb=memory_mb,
            mode_counts=mode_counts,
        )

    # ------------------------------------------------------------------ #
    def _waste_between(
        self, previous_time: float, decision: PolicyDecision, next_time: float
    ) -> float:
        """Idle loaded time between two consecutive invocations.

        The image is loaded over ``[load_start, load_end)`` as scheduled by
        the previous decision; any part of that interval before the next
        invocation (clipped to the horizon) is waste, because the simulated
        execution time is zero.
        """
        load_start, load_end = decision.loaded_interval(previous_time)
        effective_end = min(load_end, next_time, self.horizon_minutes)
        if effective_end <= load_start:
            return 0.0
        return effective_end - load_start


def simulate_application(
    invocation_times_minutes: Sequence[float] | np.ndarray,
    policy: KeepAlivePolicy,
    *,
    horizon_minutes: float,
    app_id: str = "app",
    memory_mb: float = 1.0,
) -> AppSimResult:
    """One-call convenience wrapper around :class:`ColdStartSimulator`."""
    simulator = ColdStartSimulator(horizon_minutes)
    result = simulator.simulate_app(
        app_id, invocation_times_minutes, policy, memory_mb=memory_mb
    )
    assert isinstance(result, AppSimResult)
    return result
