"""Trace-driven cold-start simulator (Section 5.1 of the paper).

The simulator replays an application's invocation timestamps against a
keep-alive policy and determines, for every invocation, whether it would
have been a warm or a cold start, while accumulating the *wasted memory
time*: the time the application's image was kept in memory without
executing anything.

Following the paper's methodology:

* the first invocation of every application is a cold start;
* function execution times are simulated as zero, which makes the measured
  wasted memory time a conservative (worst-case) figure and makes idle
  times equal to inter-arrival times;
* applications are simulated independently (the policy is per-application
  and there is no contention in the simulator — capacity effects are the
  platform substrate's job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.hybrid import HybridHistogramPolicy
from repro.core.windows import PolicyDecision
from repro.policies.base import KeepAlivePolicy
from repro.simulation.metrics import AppSimResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.bank import PolicyBank

#: Below this many still-active applications the banked grouped-stepping
#: loop drains the remainder to the scalar engine: per-step numpy
#: dispatch overhead exceeds the scalar per-invocation cost once only a
#: handful of (necessarily long) applications are left.
DEFAULT_SCALAR_DRAIN_THRESHOLD = 8


@dataclass(frozen=True)
class InvocationOutcome:
    """Outcome of a single simulated invocation."""

    time_minutes: float
    cold: bool
    decision: PolicyDecision


@dataclass(frozen=True)
class AppSimulationTrace:
    """Full per-invocation record of one application's simulation."""

    app_id: str
    outcomes: tuple[InvocationOutcome, ...]
    wasted_memory_minutes: float

    @property
    def cold_starts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cold)

    @property
    def invocations(self) -> int:
        return len(self.outcomes)


class ColdStartSimulator:
    """Simulates one keep-alive policy over per-application invocation times.

    Args:
        horizon_minutes: End of the simulation window.  Keep-alive windows
            extending past the horizon only accumulate waste up to the
            horizon (the trace ends there).
        first_invocation_cold: Whether the first invocation of every
            application counts as a cold start (True in the paper).
        count_tail_waste: Whether memory kept loaded after the last
            invocation (until the window expires or the horizon is reached)
            counts as waste.  The paper's wasted-memory metric accounts for
            all time an image is loaded without executing, so this defaults
            to True.
    """

    def __init__(
        self,
        horizon_minutes: float,
        *,
        first_invocation_cold: bool = True,
        count_tail_waste: bool = True,
    ) -> None:
        if horizon_minutes <= 0:
            raise ValueError("simulation horizon must be positive")
        self.horizon_minutes = float(horizon_minutes)
        self.first_invocation_cold = first_invocation_cold
        self.count_tail_waste = count_tail_waste

    # ------------------------------------------------------------------ #
    def simulate_app(
        self,
        app_id: str,
        invocation_times_minutes: Sequence[float] | np.ndarray,
        policy: KeepAlivePolicy,
        *,
        memory_mb: float = 1.0,
        detailed: bool = False,
        sort: bool = False,
    ) -> AppSimResult | AppSimulationTrace:
        """Simulate one application under one policy instance.

        Args:
            app_id: Application identifier (only used for reporting).
            invocation_times_minutes: Sorted invocation timestamps.
            policy: A fresh policy instance dedicated to this application.
            memory_mb: Application memory footprint, used to weight the
                wasted memory time; the paper's simulations assume equal
                footprints (the default of 1.0).
            detailed: When True, return the full per-invocation
                :class:`AppSimulationTrace` instead of the summary record.
            sort: Opt-in for unsorted input: sort the timestamps before
                simulating.  By default unsorted input raises ``ValueError``
                — an out-of-order trace usually signals a malformed loader,
                and silently sorting would mask it.

        Raises:
            ValueError: When a timestamp falls outside ``[0, horizon]``, or
                when the timestamps are unsorted and ``sort`` is False.
        """
        times = self._validated_times(invocation_times_minutes, sort=sort)

        outcomes: list[InvocationOutcome] = []
        wasted_minutes = 0.0
        cold_starts = 0
        previous_time: float | None = None
        previous_decision: PolicyDecision | None = None

        for timestamp in times:
            timestamp = float(timestamp)
            if previous_decision is None or previous_time is None:
                cold = self.first_invocation_cold
            else:
                cold = not previous_decision.covers(previous_time, timestamp)
                wasted_minutes += self._waste_between(
                    previous_time, previous_decision, timestamp
                )
            if cold:
                cold_starts += 1
            decision = policy.on_invocation(timestamp, cold=cold)
            if detailed:
                outcomes.append(
                    InvocationOutcome(time_minutes=timestamp, cold=cold, decision=decision)
                )
            previous_time = timestamp
            previous_decision = decision

        if (
            self.count_tail_waste
            and previous_decision is not None
            and previous_time is not None
        ):
            wasted_minutes += self._waste_between(
                previous_time, previous_decision, self.horizon_minutes
            )

        if detailed:
            return AppSimulationTrace(
                app_id=app_id,
                outcomes=tuple(outcomes),
                wasted_memory_minutes=wasted_minutes,
            )
        mode_counts, oob_idle_times = _policy_mode_fields(policy)
        return AppSimResult(
            app_id=app_id,
            invocations=int(times.size),
            cold_starts=cold_starts,
            wasted_memory_minutes=wasted_minutes,
            memory_mb=memory_mb,
            mode_counts=mode_counts,
            oob_idle_times=oob_idle_times,
        )

    # ------------------------------------------------------------------ #
    def validate_times(
        self, invocation_times_minutes: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Validate one application's timestamps without a sorting escape hatch.

        Public hook for the engines (the sweep engine in particular) that
        replay many applications and need the exact validation contract of
        :meth:`simulate_app`: within ``[0, horizon]``, ascending.
        """
        return self._validated_times(invocation_times_minutes)

    def _validated_times(
        self,
        invocation_times_minutes: Sequence[float] | np.ndarray,
        *,
        sort: bool | None = None,
    ) -> np.ndarray:
        """Validate one application's timestamps (shared by every engine).

        Validates the raw input before any normalization — range-checking
        a silently sorted array would mask malformed traces.

        Args:
            invocation_times_minutes: Timestamps to validate.
            sort: ``True`` sorts a trusted-but-unsorted trace, ``False``
                rejects unsorted input suggesting the ``sort`` escape
                hatch, ``None`` rejects it outright (engines that do not
                offer sorting).
        """
        times = np.asarray(invocation_times_minutes, dtype=np.float64)
        if times.size:
            if float(np.min(times)) < 0 or float(np.max(times)) > self.horizon_minutes:
                raise ValueError(
                    "invocation timestamps fall outside the simulation horizon"
                )
            if np.any(np.diff(times) < 0):
                if sort:
                    times = np.sort(times)
                elif sort is None:
                    raise ValueError("invocation timestamps must be sorted ascending")
                else:
                    raise ValueError(
                        "invocation timestamps must be sorted ascending; pass "
                        "sort=True to sort a trusted-but-unsorted trace"
                    )
        return times

    # ------------------------------------------------------------------ #
    def waste_between(
        self, previous_time: float, decision: PolicyDecision, next_time: float
    ) -> float:
        """Public alias of :meth:`_waste_between` for the engines.

        The sweep engine accumulates tail waste with exactly this
        per-decision arithmetic (same hook role as :meth:`validate_times`).
        """
        return self._waste_between(previous_time, decision, next_time)

    def _waste_between(
        self, previous_time: float, decision: PolicyDecision, next_time: float
    ) -> float:
        """Idle loaded time between two consecutive invocations.

        The image is loaded over ``[load_start, load_end)`` as scheduled by
        the previous decision; any part of that interval before the next
        invocation (clipped to the horizon) is waste, because the simulated
        execution time is zero.
        """
        load_start, load_end = decision.loaded_interval(previous_time)
        effective_end = min(load_end, next_time, self.horizon_minutes)
        if effective_end <= load_start:
            return 0.0
        return effective_end - load_start

    # ------------------------------------------------------------------ #
    # Banked (grouped-stepping) execution
    # ------------------------------------------------------------------ #
    def simulate_apps_banked(
        self,
        app_ids: Sequence[str],
        invocation_times: Sequence[Sequence[float] | np.ndarray],
        bank_factory: Callable[[int], "PolicyBank"],
        *,
        memory_mb: Sequence[float] | None = None,
        scalar_drain_threshold: int = DEFAULT_SCALAR_DRAIN_THRESHOLD,
    ) -> list[AppSimResult]:
        """Simulate many applications at once through one policy bank.

        Applications are assigned bank rows in non-increasing order of
        invocation count and stepped together: step ``k`` feeds the
        ``k``-th invocation of every application that has one, so the
        active set at every step is a row prefix (the bank protocol of
        :mod:`repro.policies.bank`).  Cold/warm outcomes and wasted
        memory are computed with the same per-gap float operations as the
        scalar loop, accumulated in the same per-application order, so
        the results match :meth:`simulate_app` bit for bit.

        Once fewer than ``scalar_drain_threshold`` applications remain
        active (the longest streams), each remaining row is cloned into
        an equivalent scalar policy (:meth:`PolicyBank.extract_policy`)
        and finished through the scalar loop — numpy dispatch overhead on
        a handful of rows would otherwise dominate.  Banks that do not
        support extraction are stepped to the end.

        Args:
            app_ids: One identifier per application (reporting only).
            invocation_times: Sorted invocation timestamps per application
                (same contract as :meth:`simulate_app`: within
                ``[0, horizon]``, ascending).
            bank_factory: Builds the bank; called once with the number of
                applications.
            memory_mb: Optional per-application memory footprints used to
                weight the wasted memory time (default 1.0 each).
            scalar_drain_threshold: Active-set size at or below which the
                remaining applications are drained to the scalar engine;
                0 disables draining.

        Returns:
            One :class:`AppSimResult` per application, in input order.
        """
        num_apps = len(app_ids)
        if len(invocation_times) != num_apps:
            raise ValueError("one invocation array is required per application")
        if memory_mb is not None and len(memory_mb) != num_apps:
            raise ValueError("one memory footprint is required per application")
        times_arrays = [self._validated_times(times) for times in invocation_times]

        counts = np.array([array.size for array in times_arrays], dtype=np.int64)
        # Longest applications first, stable, so the active set at step k
        # is always the row prefix [0, n_k).
        order = np.argsort(-counts, kind="stable")
        counts_sorted = counts[order]
        flat = (
            np.concatenate([times_arrays[i] for i in order])
            if num_apps
            else np.zeros(0, dtype=np.float64)
        )
        offsets = np.zeros(num_apps, dtype=np.int64)
        if num_apps:
            np.cumsum(counts_sorted[:-1], out=offsets[1:])
        max_count = int(counts_sorted[0]) if num_apps else 0
        # Active-set size per step: the number of applications with more
        # than k invocations.
        occupancy = np.bincount(counts_sorted, minlength=max_count + 1)
        active_per_step = num_apps - np.cumsum(occupancy)[:max_count]

        bank = bank_factory(num_apps)
        # Input timestamps were validated sorted above; let the bank skip
        # its own per-step monotonicity check.
        bank.assume_monotonic = True
        prewarm = np.zeros(num_apps, dtype=np.float64)
        keepalive = np.zeros(num_apps, dtype=np.float64)
        cold_counts = np.zeros(num_apps, dtype=np.int64)
        wasted = np.zeros(num_apps, dtype=np.float64)
        previous_times = np.zeros(0, dtype=np.float64)
        drained: list[AppSimResult | None] = [None] * num_apps

        for step in range(max_count):
            active = int(active_per_step[step])
            if (
                bank.supports_extraction
                and active <= scalar_drain_threshold
                and active > 0
            ):
                for row in range(active):
                    drained[row] = self._drain_row_scalar(
                        bank,
                        row,
                        app_id=app_ids[order[row]],
                        times=flat[offsets[row] : offsets[row] + counts_sorted[row]],
                        step=step,
                        previous_time=float(previous_times[row]) if step else 0.0,
                        previous_decision=(
                            PolicyDecision(
                                prewarm_minutes=float(prewarm[row]),
                                keepalive_minutes=float(keepalive[row]),
                            )
                            if step
                            else None
                        ),
                        cold_count=int(cold_counts[row]),
                        wasted_minutes=float(wasted[row]),
                        memory_mb=(
                            float(memory_mb[order[row]]) if memory_mb is not None else 1.0
                        ),
                    )
                break
            now = flat[offsets[:active] + step]
            if step == 0:
                cold = np.full(active, self.first_invocation_cold, dtype=bool)
            else:
                load_start = previous_times[:active] + prewarm[:active]
                load_end = load_start + keepalive[:active]
                # Same boundaries as PolicyDecision.covers: its zero-prewarm
                # branch (now <= load_end) coincides with the two-sided
                # check here because load_start == previous <= now under
                # sorted per-app timestamps.
                cold = ~((load_start <= now) & (now <= load_end))
                # Same per-gap terms, accumulated in the same per-app
                # order, as the scalar _waste_between loop.
                effective_end = np.minimum(
                    np.minimum(load_end, now), self.horizon_minutes
                )
                wasted[:active] += np.maximum(effective_end - load_start, 0.0)
            cold_counts[:active] += cold
            step_prewarm, step_keepalive = bank.on_invocations(now, cold)
            prewarm[:active] = step_prewarm
            keepalive[:active] = step_keepalive
            previous_times = now

        results: list[AppSimResult | None] = [None] * num_apps
        for row in range(num_apps):
            item = int(order[row])
            if drained[row] is not None:
                results[item] = drained[row]
                continue
            count = int(counts_sorted[row])
            wasted_minutes = float(wasted[row])
            if self.count_tail_waste and count > 0:
                last_time = float(flat[offsets[row] + count - 1])
                wasted_minutes += self._waste_between(
                    last_time,
                    PolicyDecision(
                        prewarm_minutes=float(prewarm[row]),
                        keepalive_minutes=float(keepalive[row]),
                    ),
                    self.horizon_minutes,
                )
            results[item] = AppSimResult(
                app_id=app_ids[item],
                invocations=count,
                cold_starts=int(cold_counts[row]),
                wasted_memory_minutes=wasted_minutes,
                memory_mb=float(memory_mb[item]) if memory_mb is not None else 1.0,
                mode_counts=bank.mode_counts(row),
                oob_idle_times=bank.oob_idle_times(row),
            )
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _drain_row_scalar(
        self,
        bank: "PolicyBank",
        row: int,
        *,
        app_id: str,
        times: np.ndarray,
        step: int,
        previous_time: float,
        previous_decision: PolicyDecision | None,
        cold_count: int,
        wasted_minutes: float,
        memory_mb: float,
    ) -> AppSimResult:
        """Finish one bank row through the scalar loop.

        The row is cloned into an equivalent scalar policy and its
        remaining invocations replayed with exactly the scalar engine's
        per-invocation operations, resuming the banked accumulators.
        """
        policy = bank.extract_policy(row)
        for timestamp in times[step:]:
            timestamp = float(timestamp)
            if previous_decision is None:
                cold = self.first_invocation_cold
            else:
                cold = not previous_decision.covers(previous_time, timestamp)
                wasted_minutes += self._waste_between(
                    previous_time, previous_decision, timestamp
                )
            if cold:
                cold_count += 1
            previous_decision = policy.on_invocation(timestamp, cold=cold)
            previous_time = timestamp
        if self.count_tail_waste and previous_decision is not None:
            wasted_minutes += self._waste_between(
                previous_time, previous_decision, self.horizon_minutes
            )
        mode_counts, oob_idle_times = _policy_mode_fields(policy)
        return AppSimResult(
            app_id=app_id,
            invocations=int(times.size),
            cold_starts=cold_count,
            wasted_memory_minutes=wasted_minutes,
            memory_mb=memory_mb,
            mode_counts=mode_counts,
            oob_idle_times=oob_idle_times,
        )


def _policy_mode_fields(policy: KeepAlivePolicy) -> tuple[dict[str, int], int]:
    """Decision-mode counters and OOB count carried into AppSimResult."""
    if isinstance(policy, HybridHistogramPolicy):
        stats = policy.stats
        return (
            {
                "histogram": stats.histogram_decisions,
                "standard": stats.standard_decisions,
                "arima": stats.arima_decisions,
            },
            stats.out_of_bounds_idle_times,
        )
    return {}, 0


def simulate_application(
    invocation_times_minutes: Sequence[float] | np.ndarray,
    policy: KeepAlivePolicy,
    *,
    horizon_minutes: float,
    app_id: str = "app",
    memory_mb: float = 1.0,
) -> AppSimResult:
    """One-call convenience wrapper around :class:`ColdStartSimulator`."""
    simulator = ColdStartSimulator(horizon_minutes)
    result = simulator.simulate_app(
        app_id, invocation_times_minutes, policy, memory_mb=memory_mb
    )
    assert isinstance(result, AppSimResult)
    return result
