"""Trace-driven cold-start simulation (Section 5.1 methodology).

Execution engines
-----------------
Policy runs over a workload are routed through one of three engines,
selected by the ``execution`` field of :class:`RunnerOptions` (see
:mod:`repro.simulation.engine`):

* ``serial`` — the reference scalar loop: one
  :meth:`ColdStartSimulator.simulate_app` call per application, one
  ``policy.on_invocation`` call per invocation.  Slowest, and the ground
  truth the other engines are tested against.
* ``vectorized`` — for policies with
  ``supports_vectorized = True`` (the fixed keep-alive family and
  no-unloading), cold starts and wasted-memory minutes are computed in
  closed form from numpy array arithmetic on the invocation timestamps
  (:func:`simulate_constant_decision_app`), with no per-invocation Python
  calls; other policies fall back to the scalar loop per application.
* ``parallel`` — applications are sharded across a ``multiprocessing``
  pool (``workers`` option, default: all cores) and the per-shard results
  are reassembled in workload order, so output is deterministic and
  independent of the worker count.  Each shard uses the vectorized fast
  path where the policy supports it.
* ``auto`` (default) — ``vectorized``, in-process.

Multi-policy runs additionally route through the **shared-state sweep
engine** (:mod:`repro.simulation.sweep_engine`): policy families
declared via :attr:`~repro.policies.registry.PolicyFactory.sweep_key`
(the whole fixed keep-alive grid; hybrid configurations sharing one
histogram geometry) are evaluated in a single pass over the workload,
with per-configuration knobs applied as decision masks over the shared
trace-derived state.  The ``sweep`` field of :class:`RunnerOptions`
selects the routing.

``tests/simulation/test_engine_equivalence.py`` locks the engines
together: all three produce identical cold-start counts and
wasted-memory minutes (to 1e-9) for every registered policy family, and
``tests/simulation/test_sweep_equivalence.py`` does the same for the
sweep engine against independent per-configuration runs.
:class:`ParallelWorkloadRunner` is a convenience wrapper pinning the
parallel engine; ``benchmarks/test_bench_engine_speedup.py`` and
``benchmarks/test_bench_sweep_speedup.py`` measure the speedups (see
benchmarks/conftest.py for how to run them).
"""

from repro.simulation.coldstart import (
    AppSimulationTrace,
    ColdStartSimulator,
    InvocationOutcome,
    simulate_application,
)
from repro.simulation.engine import (
    EXECUTION_MODES,
    SWEEP_MODES,
    SimulationEngine,
    simulate_constant_decision_app,
)
from repro.simulation.metrics import AggregateResult, AppSimResult, merge_results
from repro.simulation.pareto import (
    FrontierComparison,
    TradeOffPoint,
    compare_frontiers,
    interpolate_cold_start_at_memory,
    interpolate_memory_at_cold_start,
    pareto_frontier,
    trade_off_points,
)
from repro.simulation.runner import (
    ParallelWorkloadRunner,
    PolicyComparison,
    RunnerOptions,
    WorkloadRunner,
    run_policy_over_workload,
)
from repro.simulation.sweep import (
    AlwaysColdComparison,
    FIGURE_15_HYBRID_RANGE_HOURS,
    FIGURE_16_CUTOFFS,
    FIGURE_18_CV_THRESHOLDS,
    SweepResult,
    combined_figure_factories,
    figure_factories,
    sweep_arima_contribution,
    sweep_cutoffs,
    sweep_cv_threshold,
    sweep_fixed_and_hybrid,
    sweep_fixed_keepalive,
    sweep_hybrid_ranges,
    sweep_prewarming,
)
from repro.simulation.sweep_engine import (
    FactoryGroup,
    SweepEngine,
    check_unique_policy_names,
    group_factories,
)

__all__ = [
    "AppSimulationTrace",
    "ColdStartSimulator",
    "InvocationOutcome",
    "simulate_application",
    "EXECUTION_MODES",
    "SWEEP_MODES",
    "SimulationEngine",
    "simulate_constant_decision_app",
    "FactoryGroup",
    "SweepEngine",
    "check_unique_policy_names",
    "group_factories",
    "AggregateResult",
    "AppSimResult",
    "merge_results",
    "FrontierComparison",
    "TradeOffPoint",
    "compare_frontiers",
    "interpolate_cold_start_at_memory",
    "interpolate_memory_at_cold_start",
    "pareto_frontier",
    "trade_off_points",
    "ParallelWorkloadRunner",
    "PolicyComparison",
    "RunnerOptions",
    "WorkloadRunner",
    "run_policy_over_workload",
    "AlwaysColdComparison",
    "FIGURE_15_HYBRID_RANGE_HOURS",
    "FIGURE_16_CUTOFFS",
    "FIGURE_18_CV_THRESHOLDS",
    "SweepResult",
    "combined_figure_factories",
    "figure_factories",
    "sweep_arima_contribution",
    "sweep_cutoffs",
    "sweep_cv_threshold",
    "sweep_fixed_and_hybrid",
    "sweep_fixed_keepalive",
    "sweep_hybrid_ranges",
    "sweep_prewarming",
]
