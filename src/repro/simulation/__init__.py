"""Trace-driven cold-start simulation (Section 5.1 methodology)."""

from repro.simulation.coldstart import (
    AppSimulationTrace,
    ColdStartSimulator,
    InvocationOutcome,
    simulate_application,
)
from repro.simulation.metrics import AggregateResult, AppSimResult, merge_results
from repro.simulation.pareto import (
    FrontierComparison,
    TradeOffPoint,
    compare_frontiers,
    interpolate_cold_start_at_memory,
    interpolate_memory_at_cold_start,
    pareto_frontier,
    trade_off_points,
)
from repro.simulation.runner import (
    PolicyComparison,
    RunnerOptions,
    WorkloadRunner,
    run_policy_over_workload,
)
from repro.simulation.sweep import (
    AlwaysColdComparison,
    FIGURE_15_HYBRID_RANGE_HOURS,
    FIGURE_16_CUTOFFS,
    FIGURE_18_CV_THRESHOLDS,
    SweepResult,
    sweep_arima_contribution,
    sweep_cutoffs,
    sweep_cv_threshold,
    sweep_fixed_and_hybrid,
    sweep_fixed_keepalive,
    sweep_hybrid_ranges,
    sweep_prewarming,
)

__all__ = [
    "AppSimulationTrace",
    "ColdStartSimulator",
    "InvocationOutcome",
    "simulate_application",
    "AggregateResult",
    "AppSimResult",
    "merge_results",
    "FrontierComparison",
    "TradeOffPoint",
    "compare_frontiers",
    "interpolate_cold_start_at_memory",
    "interpolate_memory_at_cold_start",
    "pareto_frontier",
    "trade_off_points",
    "PolicyComparison",
    "RunnerOptions",
    "WorkloadRunner",
    "run_policy_over_workload",
    "AlwaysColdComparison",
    "FIGURE_15_HYBRID_RANGE_HOURS",
    "FIGURE_16_CUTOFFS",
    "FIGURE_18_CV_THRESHOLDS",
    "SweepResult",
    "sweep_arima_contribution",
    "sweep_cutoffs",
    "sweep_cv_threshold",
    "sweep_fixed_and_hybrid",
    "sweep_fixed_keepalive",
    "sweep_hybrid_ranges",
    "sweep_prewarming",
]
