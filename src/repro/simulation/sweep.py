"""Parameter sweeps behind Figures 14–19.

Each sweep function evaluates a family of policy configurations over the
same workload and returns the per-configuration aggregates, normalized to
the 10-minute fixed keep-alive baseline where the paper does so.  The
experiment drivers in :mod:`repro.experiments` format these results into
the paper's tables and series.

Every sweep accepts a :class:`RunnerOptions` whose ``execution`` field
selects the simulation engine (``serial``/``vectorized``/``banked``/
``parallel``/``auto``, see :mod:`repro.simulation.engine`); e.g.
``sweep_fixed_keepalive(workload, options=RunnerOptions(execution="parallel"))``
shards the fixed-policy family across all cores.

Every sweep runs through :meth:`WorkloadRunner.run_policies` and
therefore through the shared-state sweep engine
(:mod:`repro.simulation.sweep_engine`): under the default ``auto``
routing, the whole fixed keep-alive grid is evaluated in one closed-form
pass over shared per-app gaps, and hybrid configurations sharing a
histogram geometry (all of Figures 16–19) share one histogram-update
pass, with per-configuration cutoffs/CV thresholds evaluated as decision
masks and ARIMA forecasts fitted once per application.  Pass
``RunnerOptions(sweep="per-policy")`` to restore the one-run-per-
configuration reference behaviour.

:func:`figure_factories` exposes each figure's default factory list (and
:func:`combined_figure_factories` their deduplicated union) for the
``repro sweep`` CLI and the sweep benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.config import HybridPolicyConfig
from repro.policies.fixed import FIGURE_14_KEEPALIVE_MINUTES
from repro.policies.registry import (
    PolicyFactory,
    fixed_keepalive_factory,
    hybrid_factory,
    no_unloading_factory,
)
from repro.simulation.metrics import AggregateResult
from repro.simulation.pareto import TradeOffPoint, pareto_frontier, trade_off_points
from repro.simulation.runner import RunnerOptions, WorkloadRunner
from repro.trace.schema import Workload

#: Histogram ranges, in hours, evaluated for the hybrid policy in Figure 15.
FIGURE_15_HYBRID_RANGE_HOURS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)

#: Head/tail cutoff pairs evaluated in Figure 16.
FIGURE_16_CUTOFFS: tuple[tuple[float, float], ...] = (
    (0.0, 100.0),
    (5.0, 100.0),
    (1.0, 99.0),
    (5.0, 99.0),
    (1.0, 95.0),
    (5.0, 95.0),
)

#: CV thresholds evaluated in Figure 18.
FIGURE_18_CV_THRESHOLDS: tuple[float, ...] = (0.0, 2.0, 5.0, 10.0)

BASELINE_KEEPALIVE_MINUTES = 10.0


@dataclass
class SweepResult:
    """Results of one sweep: aggregates keyed by configuration label."""

    results: dict[str, AggregateResult]
    baseline_name: str

    @property
    def baseline(self) -> AggregateResult:
        return self.results[self.baseline_name]

    def normalized_memory(self, name: str) -> float:
        """Wasted memory of one configuration, % of the baseline's."""
        return self.results[name].normalized_wasted_memory(self.baseline)

    def third_quartile(self, name: str) -> float:
        return self.results[name].third_quartile_cold_start_percentage

    def points(self, names: Sequence[str] | None = None) -> list[TradeOffPoint]:
        """Trade-off points for (a subset of) the sweep configurations."""
        selected = (
            {name: self.results[name] for name in names} if names is not None else self.results
        )
        return trade_off_points(selected, self.baseline)

    def frontier(self, names: Sequence[str] | None = None) -> list[TradeOffPoint]:
        return pareto_frontier(self.points(names))

    def rows(self) -> list[dict[str, float | str]]:
        baseline = self.baseline
        return [
            {
                "policy": name,
                "third_quartile_app_cold_start_pct": (
                    result.third_quartile_cold_start_percentage
                ),
                "normalized_wasted_memory_pct": result.normalized_wasted_memory(baseline),
                "always_cold_pct": 100.0 * result.always_cold_fraction,
            }
            for name, result in self.results.items()
        ]


def _run(
    workload: Workload,
    factories: Sequence[PolicyFactory],
    *,
    baseline_minutes: float = BASELINE_KEEPALIVE_MINUTES,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Run factories plus the normalization baseline over the workload.

    Execution (serial / vectorized / parallel) is governed by
    ``options.execution``; the runner routes every policy through the
    corresponding engine of :mod:`repro.simulation.engine`, and
    shareable policy families through the sweep engine
    (:mod:`repro.simulation.sweep_engine`) per ``options.sweep``.
    Duplicate factory names raise ``ValueError`` (results are keyed by
    name and would silently overwrite each other).
    """
    baseline_factory = fixed_keepalive_factory(baseline_minutes)
    all_factories = list(factories)
    if all(factory.name != baseline_factory.name for factory in all_factories):
        all_factories.append(baseline_factory)
    runner = WorkloadRunner(workload, options)
    results = runner.run_policies(all_factories)
    return SweepResult(results=results, baseline_name=baseline_factory.name)


# --------------------------------------------------------------------------- #
# Figure 14: fixed keep-alive lengths (plus the no-unloading upper bound)
# --------------------------------------------------------------------------- #
def sweep_fixed_keepalive(
    workload: Workload,
    keepalive_minutes: Sequence[float] = FIGURE_14_KEEPALIVE_MINUTES,
    *,
    include_no_unloading: bool = True,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Evaluate the fixed keep-alive policy for several window lengths."""
    factories: list[PolicyFactory] = [fixed_keepalive_factory(m) for m in keepalive_minutes]
    if include_no_unloading:
        factories.append(no_unloading_factory())
    return _run(workload, factories, options=options)


# --------------------------------------------------------------------------- #
# Figure 15: fixed family vs hybrid family (histogram range sweep)
# --------------------------------------------------------------------------- #
def sweep_hybrid_ranges(
    workload: Workload,
    range_hours: Sequence[float] = FIGURE_15_HYBRID_RANGE_HOURS,
    *,
    base_config: HybridPolicyConfig | None = None,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Evaluate the hybrid policy for several histogram ranges."""
    base = base_config or HybridPolicyConfig()
    factories = [hybrid_factory(base.with_range_hours(hours)) for hours in range_hours]
    return _run(workload, factories, options=options)


def sweep_fixed_and_hybrid(
    workload: Workload,
    *,
    keepalive_minutes: Sequence[float] = FIGURE_14_KEEPALIVE_MINUTES,
    range_hours: Sequence[float] = FIGURE_15_HYBRID_RANGE_HOURS,
    base_config: HybridPolicyConfig | None = None,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """The full Figure 15 sweep: both policy families over one workload."""
    base = base_config or HybridPolicyConfig()
    factories: list[PolicyFactory] = [fixed_keepalive_factory(m) for m in keepalive_minutes]
    factories.extend(hybrid_factory(base.with_range_hours(hours)) for hours in range_hours)
    return _run(workload, factories, options=options)


# --------------------------------------------------------------------------- #
# Figure 16: head/tail cutoff percentiles
# --------------------------------------------------------------------------- #
def sweep_cutoffs(
    workload: Workload,
    cutoffs: Sequence[tuple[float, float]] = FIGURE_16_CUTOFFS,
    *,
    base_config: HybridPolicyConfig | None = None,
    include_no_unloading: bool = True,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Evaluate the hybrid policy for several head/tail cutoff pairs."""
    base = base_config or HybridPolicyConfig()
    factories: list[PolicyFactory] = []
    if include_no_unloading:
        factories.append(no_unloading_factory())
    for head, tail in cutoffs:
        factories.append(hybrid_factory(base.with_cutoffs(head, tail)))
    return _run(workload, factories, options=options)


# --------------------------------------------------------------------------- #
# Figure 17: pre-warming on/off and head percentile
# --------------------------------------------------------------------------- #
def sweep_prewarming(
    workload: Workload,
    *,
    base_config: HybridPolicyConfig | None = None,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Evaluate pre-warming variants of the hybrid policy (Figure 17).

    The three configurations match the paper's labels:

    * ``hybrid-…-nopw`` — keep-alive from the 99th-percentile tail, never
      unload after an execution ("Hybrid No PW, KA:99th");
    * ``hybrid-…[1,99]`` — pre-warm from the 1st percentile;
    * ``hybrid-…[5,99]`` — pre-warm from the 5th percentile (default).
    """
    base = base_config or HybridPolicyConfig()
    return _run(workload, _prewarming_factories(base), options=options)


def _prewarming_factories(base: HybridPolicyConfig) -> list[PolicyFactory]:
    """The Figure 17 policy list (pre-warming variants + upper bound)."""
    return [
        hybrid_factory(base.with_overrides(enable_prewarming=False)),
        hybrid_factory(base.with_cutoffs(1.0, 99.0)),
        hybrid_factory(base.with_cutoffs(5.0, 99.0)),
        no_unloading_factory(),
    ]


# --------------------------------------------------------------------------- #
# Figure 18: representativeness CV threshold
# --------------------------------------------------------------------------- #
def sweep_cv_threshold(
    workload: Workload,
    thresholds: Sequence[float] = FIGURE_18_CV_THRESHOLDS,
    *,
    base_config: HybridPolicyConfig | None = None,
    options: RunnerOptions | None = None,
) -> SweepResult:
    """Evaluate the hybrid policy for several CV thresholds (4-hour range)."""
    base = base_config or HybridPolicyConfig()
    factories = [_cv_threshold_factory(base, threshold) for threshold in thresholds]
    factories.append(no_unloading_factory())
    return _run(workload, factories, options=options)


def _cv_threshold_factory(base: HybridPolicyConfig, threshold: float) -> PolicyFactory:
    """One Figure 18 configuration, relabelled by its CV threshold.

    ``renamed`` keeps the family metadata, so the whole threshold grid
    still shares a single histogram pass in the sweep engine.
    """
    return hybrid_factory(base.with_overrides(cv_threshold=threshold)).renamed(
        f"hybrid-cv{threshold:g}"
    )


# --------------------------------------------------------------------------- #
# Figure 19: contribution of the ARIMA component
# --------------------------------------------------------------------------- #
@dataclass
class AlwaysColdComparison:
    """Always-cold application fractions for the Figure 19 policies."""

    fixed: AggregateResult
    hybrid_without_arima: AggregateResult
    hybrid: AggregateResult

    def rows(self) -> list[dict[str, float | str]]:
        return [
            {
                "policy": label,
                "always_cold_pct": 100.0 * result.always_cold_fraction,
                "always_cold_excl_single_pct": (
                    100.0 * result.always_cold_fraction_excluding_single()
                ),
                "single_invocation_pct": 100.0 * result.single_invocation_fraction,
            }
            for label, result in (
                ("fixed", self.fixed),
                ("hybrid-without-arima", self.hybrid_without_arima),
                ("hybrid", self.hybrid),
            )
        ]


def sweep_arima_contribution(
    workload: Workload,
    *,
    range_minutes: float = 240.0,
    base_config: HybridPolicyConfig | None = None,
    options: RunnerOptions | None = None,
) -> AlwaysColdComparison:
    """Compare fixed, hybrid-without-ARIMA, and full hybrid policies.

    All three use the same 4-hour horizon, as in Figure 19: the fixed
    keep-alive window and the histogram range are both ``range_minutes``.

    The three policies run through one :meth:`WorkloadRunner.run_policies`
    call, so the two hybrid variants — which share their histogram
    geometry — are evaluated from a single shared histogram pass by the
    sweep engine (the ARIMA-free variant simply never takes the forecast
    branch).
    """
    base = (base_config or HybridPolicyConfig()).with_overrides(
        histogram_range_minutes=range_minutes
    )
    runner = WorkloadRunner(workload, options)
    factories = [
        fixed_keepalive_factory(range_minutes),
        hybrid_factory(base.with_overrides(enable_arima=False)),
        hybrid_factory(base),
    ]
    results = runner.run_policies(factories)
    return AlwaysColdComparison(
        fixed=results[factories[0].name],
        hybrid_without_arima=results[factories[1].name],
        hybrid=results[factories[2].name],
    )


# --------------------------------------------------------------------------- #
# Default figure factory lists (the `repro sweep` CLI and the benchmarks)
# --------------------------------------------------------------------------- #
def figure_factories(
    figure: str, *, base_config: HybridPolicyConfig | None = None
) -> list[PolicyFactory]:
    """The default policy list behind one of the sweep figures.

    Args:
        figure: ``fig14`` (fixed keep-alive grid + no-unloading),
            ``fig15`` (fixed grid + hybrid histogram ranges), ``fig16``
            (head/tail cutoffs), ``fig17`` (pre-warming variants), or
            ``fig18`` (CV thresholds).
        base_config: Base hybrid configuration the variants derive from.

    Raises:
        ValueError: For an unknown figure identifier.
    """
    base = base_config or HybridPolicyConfig()
    if figure == "fig14":
        factories: list[PolicyFactory] = [
            fixed_keepalive_factory(m) for m in FIGURE_14_KEEPALIVE_MINUTES
        ]
        factories.append(no_unloading_factory())
        return factories
    if figure == "fig15":
        factories = [fixed_keepalive_factory(m) for m in FIGURE_14_KEEPALIVE_MINUTES]
        factories.extend(
            hybrid_factory(base.with_range_hours(hours))
            for hours in FIGURE_15_HYBRID_RANGE_HOURS
        )
        return factories
    if figure == "fig16":
        factories = [no_unloading_factory()]
        factories.extend(
            hybrid_factory(base.with_cutoffs(head, tail))
            for head, tail in FIGURE_16_CUTOFFS
        )
        return factories
    if figure == "fig17":
        return _prewarming_factories(base)
    if figure == "fig18":
        factories = [
            _cv_threshold_factory(base, threshold)
            for threshold in FIGURE_18_CV_THRESHOLDS
        ]
        factories.append(no_unloading_factory())
        return factories
    raise ValueError(
        f"unknown sweep figure {figure!r}; expected one of "
        "fig14, fig15, fig16, fig17, fig18"
    )


def combined_figure_factories(
    figures: Iterable[str],
    *,
    base_config: HybridPolicyConfig | None = None,
    include_baseline: bool = True,
) -> list[PolicyFactory]:
    """Deduplicated union of several figures' policy lists.

    Keeps the first occurrence of each policy name (the figures share the
    no-unloading bound and often the 10-minute baseline) and optionally
    appends the 10-minute normalization baseline when absent, so the
    result can be fed straight to
    :meth:`~repro.simulation.runner.WorkloadRunner.run_policies`.
    """
    factories: list[PolicyFactory] = []
    seen: set[str] = set()
    for figure in figures:
        for factory in figure_factories(figure, base_config=base_config):
            if factory.name not in seen:
                seen.add(factory.name)
                factories.append(factory)
    if include_baseline:
        baseline = fixed_keepalive_factory(BASELINE_KEEPALIVE_MINUTES)
        if baseline.name not in seen:
            factories.append(baseline)
    return factories
