"""Command-line front end.

Usage (after ``pip install -e .``)::

    repro generate --num-apps 200 --days 3 --out traces/        # write a synthetic trace
    repro characterize --num-apps 200 --days 3                  # Section 3 headline numbers
    repro simulate --policies fixed:10 fixed:60 hybrid:240      # policy comparison table
    repro sweep --figures fig14 fig16 fig18                     # family sweep in one pass
    repro sweep --policies fixed:5 fixed:10 fixed:60 hybrid:240 # ... or explicit specs
    repro experiment fig15                                      # one paper figure
    repro experiment all                                        # every registered figure
    repro replay --policies fixed:10 hybrid:240 --seeds 3       # platform replay campaign
    repro replay --invoker-counts 4 8 18 --workers 4            # cluster-shape scan
    repro replay --faults 0 2 6 --balancer ring least-loaded    # fault & balancer axes
    repro replay --faults 2 --autoscale 2:8                     # crashes + elastic fleet
    repro replay --fault-domains 3 --domain-outage-rate 1       # correlated rack outages
    repro replay --slow-rate 2 --controller-mttf 4              # degradation + failover
    repro replay --autoscale 2:8 --autoscale-policy predictive  # histogram-driven scaling
    repro trace pack traces/ traces/store.npz                   # CSVs -> columnar .npz store
    repro trace info traces/store.npz                           # store shape + memory footprint
    repro trace gen big.npz --apps 100000 --target-rps 200      # stream 100k apps to disk

Every sub-command accepts ``--num-apps``, ``--days``, ``--seed`` and
``--max-daily-rate`` to size the synthetic workload; ``--trace-dir`` loads
an AzurePublicDataset-schema trace from disk instead of generating one.
``simulate``, ``sweep``, and ``experiment`` additionally accept
``--execution serial|vectorized|banked|parallel|auto``, ``--workers N``,
``--sweep auto|family|per-policy``, and ``--max-resident-mb M`` to pick
the simulation engine, the multi-policy sweep routing, and the per-pass
memory budget (see :mod:`repro.simulation.engine` and
:mod:`repro.simulation.sweep_engine`); ``auto`` evaluates whole policy
families in one shared-state pass and routes banked-capable policies
through one struct-of-arrays policy bank instead of per-app instances.
``trace gen`` streams a synthetic trace of any size straight to an
``.npz`` store (bit-identical to the in-memory generator) that re-opens
memory-mapped for out-of-core simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.characterization.report import CharacterizationReport
from repro.experiments import ExperimentContext, ExperimentScale, experiment_ids, run_experiment
from repro.platform.autoscaler import AutoscalerConfig
from repro.platform.campaign import (
    ClusterScenario,
    ReplayCampaign,
    heterogeneous_memory_scenario,
)
from repro.platform.cluster import ClusterConfig
from repro.platform.faults import FaultPlan
from repro.platform.loadbalancer import BALANCER_STRATEGIES
from repro.platform.replay import ReplayConfig
from repro.policies.registry import parse_policy_spec
from repro.simulation.engine import EXECUTION_MODES, SWEEP_MODES
from repro.simulation.runner import PolicyComparison, RunnerOptions, WorkloadRunner
from repro.simulation.sweep import BASELINE_KEEPALIVE_MINUTES, combined_figure_factories
from repro.simulation.fused import simulate_streamed
from repro.trace.generator import RNG_SCHEMES, GeneratorConfig, WorkloadGenerator
from repro.trace.loader import load_dataset
from repro.trace.sampling import sample_mid_range_apps
from repro.trace.schema import Workload
from repro.trace.store import InvocationStore
from repro.trace.stream import DEFAULT_CHUNK_APPS, stream_workload_to_store
from repro.trace.writer import write_dataset

MINUTES_PER_DAY = 1440.0

#: Figures the `repro sweep` sub-command can combine into one factory list.
SWEEP_FIGURES = ("fig14", "fig15", "fig16", "fig17", "fig18")


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-apps", type=int, default=300, help="number of synthetic apps")
    parser.add_argument("--days", type=float, default=7.0, help="trace duration in days")
    parser.add_argument("--seed", type=int, default=2020, help="random seed")
    parser.add_argument(
        "--max-daily-rate",
        type=float,
        default=4000.0,
        help="cap on per-app average invocations per day",
    )
    parser.add_argument(
        "--rng-scheme",
        choices=RNG_SCHEMES,
        default="v1",
        help=(
            "generator randomness scheme: v1 threads one sequential stream "
            "through all apps (legacy outputs), v2 keys an independent "
            "stream per app (parallel generation, identical for any worker "
            "count)"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="load an AzurePublicDataset-schema trace instead of generating one",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--execution",
        choices=EXECUTION_MODES,
        default="auto",
        help=(
            "simulation engine: serial scalar loop, vectorized fixed-policy "
            "fast path, banked struct-of-arrays stepping for stateful "
            "policies, parallel sharded over a worker pool, or auto "
            "(fastest supported route per policy)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for --execution parallel (default: all cores)",
    )
    parser.add_argument(
        "--sweep",
        choices=SWEEP_MODES,
        default="auto",
        help=(
            "multi-policy sweep routing: auto (share state across policy-"
            "family configurations under auto/parallel execution), family "
            "(force the shared-state pass), or per-policy (one run per "
            "configuration)"
        ),
    )
    parser.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        help=(
            "memory budget (MB of invocation columns) per engine pass: "
            "walk the store in chunks that fit the budget and release "
            "memory-mapped pages between chunks (out-of-core traces)"
        ),
    )


def _runner_options(args: argparse.Namespace) -> RunnerOptions:
    max_resident_mb = getattr(args, "max_resident_mb", None)
    return RunnerOptions(
        execution=args.execution,
        workers=args.workers,
        sweep=args.sweep,
        max_resident_bytes=(
            int(max_resident_mb * 1e6) if max_resident_mb is not None else None
        ),
    )


def _workload_config(args: argparse.Namespace) -> GeneratorConfig:
    return GeneratorConfig(
        num_apps=args.num_apps,
        duration_minutes=args.days * MINUTES_PER_DAY,
        seed=args.seed,
        max_daily_rate=args.max_daily_rate,
        rng_scheme=getattr(args, "rng_scheme", "v1"),
    )


def _build_workload(args: argparse.Namespace) -> Workload:
    if args.trace_dir is not None:
        return load_dataset(args.trace_dir, seed=args.seed)
    return WorkloadGenerator(_workload_config(args)).generate()


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    paths = write_dataset(workload, args.out)
    print(f"workload: {workload.summary()}")
    print(f"wrote {len(paths)} files under {args.out}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    report = CharacterizationReport(workload)
    print("workload summary:")
    for key, value in workload.summary().items():
        print(f"  {key:<28} {value:,.2f}")
    print("headline characterization numbers (see Section 3 of the paper):")
    for key, value in report.headline_numbers().items():
        print(f"  {key:<40} {value:.4f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    factories = [parse_policy_spec(spec) for spec in args.policies]
    if args.fused:
        try:
            if args.trace_dir is not None:
                raise ValueError(
                    "--fused generates its own workload and cannot be combined "
                    "with --trace-dir"
                )
            if args.gen_workers < 1:
                raise ValueError("--gen-workers must be at least 1")
            if args.chunk_apps < 1:
                raise ValueError("--chunk-apps must be at least 1")
            if args.gen_workers > 1 and args.rng_scheme != "v2":
                raise ValueError(
                    "--gen-workers above 1 requires --rng-scheme v2 (per-app "
                    "random streams)"
                )
            results = simulate_streamed(
                _workload_config(args),
                factories,
                options=_runner_options(args),
                chunk_apps=args.chunk_apps,
                gen_workers=args.gen_workers,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        baseline = f"fixed-{BASELINE_KEEPALIVE_MINUTES:g}min"
        if baseline not in results:
            baseline = next(iter(results))
        comparison = PolicyComparison(results=results, baseline_name=baseline)
    else:
        workload = _build_workload(args)
        runner = WorkloadRunner(workload, _runner_options(args))
        comparison = runner.compare(factories, baseline_name=None)
    print(comparison.as_text_table())
    mode_usage = comparison.mode_usage_table()
    if mode_usage:
        print()
        print(mode_usage)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.policies:
        factories = [parse_policy_spec(spec) for spec in args.policies]
    else:
        factories = combined_figure_factories(args.figures)
    workload = _build_workload(args)
    options = _runner_options(args)
    runner = WorkloadRunner(workload, options)

    groups = runner.sweep_groups(factories)
    shared = sum(1 for group in groups if group.key is not None and len(group.factories) > 1)
    print(
        f"sweep: {len(factories)} configurations in {len(groups)} group(s) "
        f"({shared} shared-state famil{'y' if shared == 1 else 'ies'}, "
        f"sweep={options.sweep}, execution={options.execution})"
    )
    for group in groups:
        if group.key is not None and len(group.factories) > 1:
            members = ", ".join(factory.name for factory in group.factories)
            print(f"  family {group.key[0]}: {members}")

    start = time.perf_counter()
    try:
        results = runner.run_policies(factories)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    baseline = f"fixed-{BASELINE_KEEPALIVE_MINUTES:g}min"
    if baseline not in results:
        baseline = next(iter(results))
    comparison = PolicyComparison(results=results, baseline_name=baseline)
    print()
    print(comparison.as_text_table())
    mode_usage = comparison.mode_usage_table()
    if mode_usage:
        print()
        print(mode_usage)
    print()
    print(
        f"evaluated {len(results)} configurations over "
        f"{workload.total_invocations:,} invocations in {elapsed:.2f}s"
    )
    return 0


def _open_store(path: Path) -> InvocationStore:
    """Open a trace as a columnar store: an ``.npz`` cache or a CSV dataset."""
    if path.is_dir():
        return load_dataset(path).store
    try:
        return InvocationStore.open(path, mmap=True)
    except Exception as error:
        raise SystemExit(
            f"{path} is neither a packed .npz store nor a dataset directory "
            f"({error})"
        ) from None


def _cmd_trace_info(args: argparse.Namespace) -> int:
    store = _open_store(args.path)
    profile = store.memory_profile()
    print(f"columnar invocation store: {args.path}")
    print(f"  apps                 {store.num_apps:>14,}")
    print(f"  functions            {store.num_functions:>14,}")
    print(f"  invocations          {store.num_invocations:>14,}")
    print(f"  duration             {store.duration_minutes:>14,.1f} minutes")
    print(f"  duration (days)      {store.duration_minutes / MINUTES_PER_DAY:>14,.2f}")
    print(f"  column memory        {store.nbytes / 1e6:>14,.2f} MB")
    if args.path.is_file():
        on_disk = args.path.stat().st_size
        print(f"  on disk              {on_disk / 1e6:>14,.2f} MB")
    print(f"  memory-mapped        {profile['mapped_bytes'] / 1e6:>14,.2f} MB")
    print(f"  resident (heap)      {profile['heap_bytes'] / 1e6:>14,.2f} MB")
    print(
        f"  times                float64[{store.num_invocations}]"
        f" ({store.times.nbytes / 1e6:,.2f} MB,"
        f" {'memory-mapped' if store.is_memory_mapped else 'in-memory'})"
    )
    print(f"  function_idx         int64[{store.function_idx.size}]")
    print(f"  app_offsets          int64[{store.app_offsets.size}]")
    return 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    try:
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
        if args.chunk_apps < 1:
            raise ValueError("--chunk-apps must be at least 1")
        if args.workers > 1 and args.rng_scheme != "v2":
            raise ValueError(
                "--workers above 1 requires --rng-scheme v2 (per-app random "
                "streams make chunk output independent of worker count)"
            )
        config = GeneratorConfig(
            num_apps=args.apps,
            duration_minutes=args.days * MINUTES_PER_DAY,
            seed=args.seed,
            max_daily_rate=args.max_daily_rate,
            target_rps=args.target_rps,
            rng_scheme=args.rng_scheme,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    start = time.perf_counter()

    def progress(apps_done: int, num_apps: int) -> None:
        print(f"\r  streamed {apps_done:,}/{num_apps:,} apps", end="", flush=True)

    stats = stream_workload_to_store(
        config,
        args.out,
        chunk_apps=args.chunk_apps,
        workers=args.workers,
        progress=progress,
    )
    elapsed = time.perf_counter() - start
    print()
    rate = stats.num_invocations / elapsed if elapsed > 0 else float("inf")
    print(
        f"streamed {stats.num_invocations:,} invocations "
        f"({stats.num_apps:,} apps, {stats.num_functions:,} functions, "
        f"{stats.duration_minutes / MINUTES_PER_DAY:g} days) into {stats.path}"
    )
    print(
        f"  {stats.on_disk_bytes / 1e6:,.2f} MB on disk, "
        f"{elapsed:.2f}s ({rate:,.0f} invocations/s)"
    )
    # Machine-readable completion summary (one JSON line, for scripts and
    # the nightly bench harness).
    print(
        json.dumps(
            {
                "apps": stats.num_apps,
                "functions": stats.num_functions,
                "invocations": stats.num_invocations,
                "bytes": stats.on_disk_bytes,
                "seconds": round(elapsed, 3),
                "invocations_per_second": round(rate, 1),
                "rng_scheme": stats.rng_scheme,
                "workers": stats.workers,
                "path": str(stats.path),
            }
        )
    )
    return 0


def _cmd_trace_pack(args: argparse.Namespace) -> int:
    workload = load_dataset(args.source, seed=args.seed)
    path = workload.store.save(args.out)
    size_mb = path.stat().st_size / 1e6
    print(
        f"packed {workload.total_invocations:,} invocations "
        f"({workload.num_apps:,} apps, {workload.num_functions:,} functions) "
        f"into {path} ({size_mb:,.2f} MB)"
    )
    return 0


def _compose_fault_scenarios(
    scenarios: list[ClusterScenario], args: argparse.Namespace
) -> list[ClusterScenario]:
    """Cross the cluster-shape scenarios with the fault/balancer axes.

    ``--faults`` (crash rates per invoker-hour) and ``--balancer`` are
    scenario axes; ``--autoscale MIN:MAX``, ``--autoscale-policy``,
    ``--restart-seconds``, ``--message-delay-ms``, ``--retry-limit``,
    ``--fault-domains``, ``--domain-outage-rate``, ``--slow-rate``,
    ``--controller-mttf``, and ``--fault-seed`` apply to every scenario.
    Rate 0 on every fault axis with no message delay keeps the scenario
    fault-free (byte-identical to a plain replay).
    """
    autoscaler = None
    if args.autoscale:
        try:
            low, high = (int(part) for part in args.autoscale.split(":"))
        except ValueError:
            raise ValueError(
                f"--autoscale expects MIN:MAX, got {args.autoscale!r}"
            ) from None
        autoscaler = AutoscalerConfig(
            min_invokers=low, max_invokers=high, policy=args.autoscale_policy
        )
    elif args.autoscale_policy != "threshold":
        raise ValueError(
            "--autoscale-policy requires --autoscale MIN:MAX to enable "
            "the elastic fleet"
        )

    faulty = (
        args.message_delay_ms > 0
        or args.domain_outage_rate != 0
        or args.slow_rate != 0
        or args.controller_mttf != 0
    )

    def plan_for(rate: float) -> FaultPlan | None:
        if rate <= 0 and not faulty:
            return None
        return FaultPlan(
            crash_rate_per_hour=rate,
            restart_delay_seconds=args.restart_seconds,
            message_delay_seconds=args.message_delay_ms / 1000.0,
            retry_limit=args.retry_limit,
            domain_outage_rate_per_hour=args.domain_outage_rate,
            domain_outage_seconds=args.domain_outage_seconds,
            slow_rate_per_hour=args.slow_rate,
            slow_duration_seconds=args.slow_seconds,
            slow_execution_factor=args.slow_factor,
            slow_message_delay_factor=args.slow_factor,
            brownout_concurrency=args.brownout_concurrency,
            controller_mttf_hours=args.controller_mttf,
            controller_failover_seconds=args.failover_seconds,
            seed=args.fault_seed,
        )

    balancers = args.balancer
    fault_rates = args.faults if args.faults else [0.0]
    composed = []
    for scenario in scenarios:
        for strategy in balancers:
            name = scenario.name
            if len(balancers) > 1 or strategy != "ring":
                name = f"{name}-{strategy}"
            for rate in fault_rates:
                cell_name = name
                if args.faults:
                    cell_name = f"{name}-crash{rate:g}ph"
                if autoscaler is not None:
                    cell_name = f"{cell_name}-auto"
                composed.append(
                    ClusterScenario(
                        name=cell_name,
                        config=replace(
                            scenario.config,
                            balancer=strategy,
                            fault_plan=plan_for(rate),
                            autoscaler=autoscaler,
                            fault_domains=args.fault_domains,
                        ),
                    )
                )
    return composed


def _cmd_replay(args: argparse.Namespace) -> int:
    workload = _build_workload(args)
    factories = [parse_policy_spec(spec) for spec in args.policies]
    if args.sample_apps:
        workload = sample_mid_range_apps(
            workload, num_apps=args.sample_apps, seed=args.seed
        )
    replay_minutes = min(args.minutes, workload.duration_minutes)

    scenarios: list[ClusterScenario] = []
    single_shape = len(args.invoker_counts) == 1 and len(args.invoker_memory_mb) == 1
    for count in args.invoker_counts:
        for memory_mb in args.invoker_memory_mb:
            name = (
                "cluster"
                if single_shape
                else f"inv{count}-mem{memory_mb:g}mb"
            )
            scenarios.append(
                ClusterScenario(
                    name=name,
                    config=ClusterConfig(
                        num_invokers=count, invoker_memory_mb=memory_mb
                    ),
                )
            )
    if args.hetero_memory_mb:
        scenarios.append(heterogeneous_memory_scenario(args.hetero_memory_mb))

    try:
        scenarios = _compose_fault_scenarios(scenarios, args)
        campaign = ReplayCampaign(
            workload,
            factories,
            scenarios=scenarios,
            seeds=[args.seed + offset for offset in range(args.seeds)],
            replay_config=ReplayConfig(duration_minutes=replay_minutes, seed=args.seed),
            workers=args.workers,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"replay campaign: {len(factories)} polic{'y' if len(factories) == 1 else 'ies'}"
        f" x {len(scenarios)} scenario(s) x {args.seeds} seed(s) = "
        f"{campaign.num_replays} replays ({workload.num_apps} apps, "
        f"{workload.total_invocations:,} trace invocations, "
        f"{replay_minutes:g} min replay window)"
    )
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    print()
    print(result.as_text_table())
    print()
    print(f"completed {campaign.num_replays} replays in {elapsed:.2f}s")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        num_apps=args.num_apps,
        duration_days=args.days,
        seed=args.seed,
        max_daily_rate=args.max_daily_rate,
    )
    context = ExperimentContext(scale=scale, runner_options=_runner_options(args))
    requested = experiment_ids() if args.experiment == ["all"] else args.experiment
    unknown = [e for e in requested if e not in experiment_ids()]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {experiment_ids()}", file=sys.stderr)
        return 2
    for experiment_id in requested:
        result = run_experiment(experiment_id, context)
        print(result.as_text())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Serverless in the Wild' (ATC 2020): workload "
            "characterization and the hybrid histogram keep-alive policy."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic trace in the AzurePublicDataset schema"
    )
    _add_workload_arguments(generate)
    generate.add_argument("--out", type=Path, required=True, help="output directory")
    generate.set_defaults(handler=_cmd_generate)

    characterize = subparsers.add_parser(
        "characterize", help="print Section 3 headline characterization numbers"
    )
    _add_workload_arguments(characterize)
    characterize.set_defaults(handler=_cmd_characterize)

    simulate = subparsers.add_parser(
        "simulate", help="compare keep-alive policies with the cold-start simulator"
    )
    _add_workload_arguments(simulate)
    _add_engine_arguments(simulate)
    simulate.add_argument(
        "--policies",
        nargs="+",
        default=["fixed:10", "fixed:60", "hybrid:240", "no-unloading"],
        help="policy specs, e.g. fixed:10 hybrid:240 hybrid:240:5:99 no-unloading",
    )
    simulate.add_argument(
        "--fused",
        action="store_true",
        help=(
            "fused generate→simulate pipeline: stream generated chunks "
            "straight into the engine with no materialized workload or disk "
            "round-trip (results identical to the two-step path)"
        ),
    )
    simulate.add_argument(
        "--gen-workers",
        type=int,
        default=1,
        help="parallel generation processes for --fused (requires --rng-scheme v2)",
    )
    simulate.add_argument(
        "--chunk-apps",
        type=int,
        default=DEFAULT_CHUNK_APPS,
        help="apps generated and simulated per fused chunk (memory high-water mark)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "evaluate whole policy families in one shared-state pass "
            "(the Figure 14-18 parameter sweeps)"
        ),
    )
    _add_workload_arguments(sweep)
    _add_engine_arguments(sweep)
    sweep_selection = sweep.add_mutually_exclusive_group()
    sweep_selection.add_argument(
        "--figures",
        nargs="+",
        choices=SWEEP_FIGURES,
        default=["fig14", "fig16", "fig18"],
        help="figure sweeps to combine into one factory list (deduplicated)",
    )
    sweep_selection.add_argument(
        "--policies",
        nargs="+",
        default=None,
        help="explicit policy specs instead of --figures, e.g. fixed:10 hybrid:240",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    trace = subparsers.add_parser(
        "trace", help="inspect and convert trace files (columnar store tooling)"
    )
    trace_subparsers = trace.add_subparsers(dest="trace_command", required=True)
    trace_info = trace_subparsers.add_parser(
        "info",
        help="print the shape and memory footprint of a trace "
        "(a packed .npz store is opened memory-mapped)",
    )
    trace_info.add_argument(
        "path",
        type=Path,
        help="a packed store (.npz) or an AzurePublicDataset-schema CSV directory",
    )
    trace_info.set_defaults(handler=_cmd_trace_info)
    trace_pack = trace_subparsers.add_parser(
        "pack", help="pack a CSV dataset directory into a columnar .npz store"
    )
    trace_pack.add_argument("source", type=Path, help="CSV dataset directory")
    trace_pack.add_argument("out", type=Path, help="output .npz path")
    trace_pack.add_argument(
        "--seed", type=int, default=0, help="seed for sub-minute placement"
    )
    trace_pack.set_defaults(handler=_cmd_trace_pack)
    trace_gen = trace_subparsers.add_parser(
        "gen",
        help=(
            "stream a synthetic workload straight into a columnar .npz "
            "store (out-of-core: memory stays flat in the app count)"
        ),
    )
    trace_gen.add_argument("out", type=Path, help="output .npz path")
    trace_gen.add_argument(
        "--apps", type=int, default=100_000, help="number of synthetic apps"
    )
    trace_gen.add_argument(
        "--days", type=float, default=7.0, help="trace duration in days"
    )
    trace_gen.add_argument("--seed", type=int, default=2020, help="random seed")
    trace_gen.add_argument(
        "--max-daily-rate",
        type=float,
        default=4000.0,
        help="cap on per-app average invocations per day",
    )
    trace_gen.add_argument(
        "--target-rps",
        type=float,
        default=None,
        help=(
            "rescale per-app rates so the aggregate load approximates this "
            "many requests per second (decouples load from --apps)"
        ),
    )
    trace_gen.add_argument(
        "--chunk-apps",
        type=int,
        default=DEFAULT_CHUNK_APPS,
        help="apps generated and appended per chunk (the memory high-water mark)",
    )
    trace_gen.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "parallel generation processes (requires --rng-scheme v2; the "
            "archive is byte-identical for any worker count)"
        ),
    )
    trace_gen.add_argument(
        "--rng-scheme",
        choices=RNG_SCHEMES,
        default="v1",
        help=(
            "generator randomness scheme: v1 threads one sequential stream "
            "through all apps (legacy outputs), v2 keys an independent "
            "stream per app (parallel generation, identical for any worker "
            "count)"
        ),
    )
    trace_gen.set_defaults(handler=_cmd_trace_gen)

    replay = subparsers.add_parser(
        "replay",
        help=(
            "replay the workload on the FaaS cluster substrate across "
            "(policy x seed x cluster shape) scenarios"
        ),
    )
    _add_workload_arguments(replay)
    replay.add_argument(
        "--policies",
        nargs="+",
        default=["fixed:10", "hybrid:240"],
        help="policy specs to replay, e.g. fixed:10 hybrid:240",
    )
    replay.add_argument(
        "--minutes",
        type=float,
        default=480.0,
        help="replay window in minutes (the paper uses 480 = 8 hours)",
    )
    replay.add_argument(
        "--sample-apps",
        type=int,
        default=68,
        help=(
            "mid-range-popularity sample size (68 in the paper); "
            "0 replays the whole workload"
        ),
    )
    replay.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of duration-sampling seeds (multi-seed error bars)",
    )
    replay.add_argument(
        "--invoker-counts",
        type=int,
        nargs="+",
        default=[18],
        help="invoker counts to scan (scenario axis)",
    )
    replay.add_argument(
        "--invoker-memory-mb",
        type=float,
        nargs="+",
        default=[3584.0],
        help="per-invoker memory budgets to scan (scenario axis)",
    )
    replay.add_argument(
        "--hetero-memory-mb",
        type=float,
        nargs="+",
        default=None,
        help=(
            "add one heterogeneous-fleet scenario with these per-invoker "
            "budgets (one invoker per value)"
        ),
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fork-pool size for the campaign (default: all cores)",
    )
    replay.add_argument(
        "--faults",
        type=float,
        nargs="+",
        default=None,
        metavar="RATE",
        help=(
            "invoker crash rates per invoker-hour (scenario axis); "
            "0 keeps a scenario fault-free"
        ),
    )
    replay.add_argument(
        "--restart-seconds",
        type=float,
        default=30.0,
        help="invoker restart delay after a crash",
    )
    replay.add_argument(
        "--message-delay-ms",
        type=float,
        default=0.0,
        help="fixed controller-to-invoker message delay in milliseconds",
    )
    replay.add_argument(
        "--retry-limit",
        type=int,
        default=1,
        help="resubmission budget for activations lost to a crash",
    )
    replay.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault-injection random streams",
    )
    replay.add_argument(
        "--fault-domains",
        type=int,
        default=1,
        help=(
            "number of correlated failure domains (racks/zones); invoker i "
            "belongs to domain i %% N and domain outages take every member "
            "down together"
        ),
    )
    replay.add_argument(
        "--domain-outage-rate",
        type=float,
        default=0.0,
        help="correlated domain outages per domain-hour (0 disables)",
    )
    replay.add_argument(
        "--domain-outage-seconds",
        type=float,
        default=120.0,
        help="duration of one correlated domain outage",
    )
    replay.add_argument(
        "--slow-rate",
        type=float,
        default=0.0,
        help="partial-degradation (slow invoker) episodes per invoker-hour",
    )
    replay.add_argument(
        "--slow-factor",
        type=float,
        default=4.0,
        help="execution/startup/message-delay multiplier while degraded",
    )
    replay.add_argument(
        "--slow-seconds",
        type=float,
        default=300.0,
        help="duration of one degradation episode",
    )
    replay.add_argument(
        "--brownout-concurrency",
        type=int,
        default=0,
        help=(
            "in-flight cap above which a degraded invoker sheds activations "
            "(0 disables brownout shedding)"
        ),
    )
    replay.add_argument(
        "--controller-mttf",
        type=float,
        default=0.0,
        help=(
            "controller mean time to failure in hours (0 disables controller "
            "crashes; enables at-least-once redelivery with dedup)"
        ),
    )
    replay.add_argument(
        "--failover-seconds",
        type=float,
        default=5.0,
        help="controller recovery time after a crash",
    )
    replay.add_argument(
        "--balancer",
        nargs="+",
        default=["ring"],
        choices=list(BALANCER_STRATEGIES),
        help="load-balancer strategies to scan (scenario axis)",
    )
    replay.add_argument(
        "--autoscale",
        default=None,
        metavar="MIN:MAX",
        help="enable invoker autoscaling with the given fleet bounds",
    )
    replay.add_argument(
        "--autoscale-policy",
        default="threshold",
        help=(
            "autoscaling policy: threshold (reactive) or predictive "
            "(scale from the per-app arrival histograms); requires "
            "--autoscale"
        ),
    )
    replay.set_defaults(handler=_cmd_replay)

    experiment = subparsers.add_parser(
        "experiment", help="run one or more paper figure/table experiments"
    )
    _add_workload_arguments(experiment)
    _add_engine_arguments(experiment)
    experiment.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment ids (or 'all'); available: {', '.join(experiment_ids())}",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
